package experiments

import (
	"strconv"

	"repro/internal/baseline"
	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/power"
	"repro/internal/relation"
	"repro/internal/stats"
)

// BaselineComparison (Table B) puts the paper's categorical scheme side by
// side with the Kiernan–Agrawal numeric-LSB baseline (reference [6]) using
// the Power metrics framework (reference [11]). Both schemes run at a
// comparable marking rate on the same catalog data — once on the standard
// dense catalog and once on a sparse catalog (only every second code
// valid, like real code spaces with checksum structure) where LSB flips
// walk off the catalog.
//
// Columns, one row per (scheme, catalog):
//
//	distortion_pct        tuples altered by embedding, % of N
//	domain_violation_pct  marked tuples left outside the catalog, % of N
//	clean_score           detection score with no attack
//	auc_loss              survival AUC under A1 data loss
//	auc_alteration        survival AUC under A3 random alterations
//
// Expected result (the paper's motivating argument quantified): equal
// resilience at equal marking rates, but the baseline damages the domain
// on sparse catalogs while the categorical scheme never leaves it.
func BaselineComparison(cfg Config) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := NewTable(
		"Table B — categorical scheme vs Kiernan-Agrawal LSB baseline (rows: scheme 0/1 × catalog 0=dense,1=sparse)",
		"scheme", "catalog", "distortion_pct", "domain_violation_pct",
		"clean_score", "auc_loss", "auc_alteration",
	)

	pcfg := power.DefaultConfig()
	pcfg.Levels = []float64{0.2, 0.4, 0.6, 0.8}
	pcfg.Passes = cfg.Passes
	pcfg.Seed = cfg.Seed + "/baseline"

	for catalogKind := 0; catalogKind <= 1; catalogKind++ {
		r, dom, err := baselineDataset(cfg, catalogKind == 1)
		if err != nil {
			return nil, err
		}
		schemes := []power.Scheme{
			&power.CategoricalScheme{
				WM: ecc.MustParseBits("1011001110"),
				Opts: mark.Options{
					Attr:   "Item_Nbr",
					K1:     keyhash.NewKey(cfg.Seed + "/bl-k1"),
					K2:     keyhash.NewKey(cfg.Seed + "/bl-k2"),
					E:      cfg.EPair[0],
					Domain: dom,
				},
			},
			&power.KAScheme{Opts: baseline.KAOptions{
				Attr: "Item_Nbr",
				Key:  keyhash.NewKey(cfg.Seed + "/ka"),
				// Match marking rates: KA marks 1/γ of tuples, the
				// categorical scheme ~1/e.
				Gamma: cfg.EPair[0],
				Xi:    2,
			}},
		}
		for si, scheme := range schemes {
			lossProfile, err := power.Evaluate(r, scheme, power.LossAttack(), "", pcfg)
			if err != nil {
				return nil, err
			}
			altProfile, err := power.Evaluate(r, scheme, power.AlterationAttack("Item_Nbr", dom), "", pcfg)
			if err != nil {
				return nil, err
			}
			// Domain damage on the marked data.
			marked := r.Clone()
			if err := scheme.Embed(marked); err != nil {
				return nil, err
			}
			viol, err := baseline.DomainViolations(marked, "Item_Nbr", dom)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				float64(si),
				float64(catalogKind),
				lossProfile.Distortion.Fraction*100,
				float64(viol)/float64(r.Len())*100,
				lossProfile.CleanScore,
				lossProfile.AUC,
				altProfile.AUC,
			)
		}
	}
	return t, nil
}

// baselineDataset builds the comparison data: dense catalogs reuse the
// standard generator; sparse catalogs admit only every second code.
func baselineDataset(cfg Config, sparse bool) (*relation.Relation, *relation.Domain, error) {
	if !sparse {
		return cfg.dataset()
	}
	vals := make([]string, cfg.CatalogSize)
	for k := range vals {
		vals[k] = strconv.Itoa(10000 + 2*k)
	}
	dom, err := relation.NewDomain(vals)
	if err != nil {
		return nil, nil, err
	}
	src := stats.NewSource(cfg.Seed + "/sparse")
	zipf := stats.NewZipf(cfg.CatalogSize, cfg.ZipfS)
	r := relation.New(sparseSchema())
	for i := 0; i < cfg.N; i++ {
		if err := r.Append(relation.Tuple{strconv.Itoa(500000 + i), vals[zipf.Sample(src)]}); err != nil {
			return nil, nil, err
		}
	}
	return r, dom, nil
}

func sparseSchema() *relation.Schema {
	return relation.MustSchema([]relation.Attribute{
		{Name: "Visit_Nbr", Type: relation.TypeInt},
		{Name: "Item_Nbr", Type: relation.TypeInt, Categorical: true},
	}, "Visit_Nbr")
}
