// Package datagen produces the synthetic datasets the experiments run on.
//
// The paper's evaluation (Section 5) watermarks the Wal-Mart Sales
// Database — the UnivClassTables.ItemScan relation on an NCR Teradata
// machine, schema:
//
//	Visit_Nbr INTEGER PRIMARY KEY,
//	Item_Nbr  INTEGER NOT NULL
//
// sampled down to at most 141 000 tuples. That data is proprietary and
// unavailable, so this package synthesises an equivalent: integer visit
// numbers as the primary key and Zipf-distributed item numbers over a
// finite product catalog. The watermarking algorithms observe only (a) the
// primary key through a keyed cryptographic hash — uniform regardless of
// the key's real-world distribution — and (b) the categorical value's index
// parity and occurrence histogram, whose essential property (non-uniform,
// heavy-tailed, as the paper itself assumes for product codes) the Zipf
// catalog reproduces. See DESIGN.md, substitution table.
//
// A second generator produces the airline-reservation relation
// (ticket, departure_city, airline) from the paper's motivating examples,
// with two categorical attributes for the multi-attribute embedding of
// Section 3.3.
package datagen

import (
	"fmt"
	"strconv"

	"repro/internal/relation"
	"repro/internal/stats"
)

// ItemScanConfig parameterises the Wal-Mart stand-in generator.
type ItemScanConfig struct {
	// N is the number of tuples. The paper's test size is 141000.
	N int
	// CatalogSize is the number of distinct Item_Nbr values (n_A).
	CatalogSize int
	// ZipfS is the popularity skew exponent; 0 = uniform, ~1 = typical
	// retail long tail.
	ZipfS float64
	// Seed makes generation reproducible.
	Seed string
}

// DefaultItemScanConfig mirrors the paper's setup at CI-friendly scale:
// use N=141000 to match the paper exactly.
func DefaultItemScanConfig() ItemScanConfig {
	return ItemScanConfig{N: 20000, CatalogSize: 1000, ZipfS: 1.0, Seed: "itemscan"}
}

// PaperItemScanConfig is the full-scale configuration from Section 5.
func PaperItemScanConfig() ItemScanConfig {
	return ItemScanConfig{N: 141000, CatalogSize: 1000, ZipfS: 1.0, Seed: "itemscan"}
}

func (c ItemScanConfig) validate() error {
	if c.N <= 0 {
		return fmt.Errorf("datagen: N must be positive, got %d", c.N)
	}
	if c.CatalogSize < 2 {
		return fmt.Errorf("datagen: catalog needs at least 2 items, got %d", c.CatalogSize)
	}
	if c.ZipfS < 0 {
		return fmt.Errorf("datagen: Zipf exponent must be non-negative, got %v", c.ZipfS)
	}
	return nil
}

// ItemScanSchema returns the paper's test schema.
func ItemScanSchema() *relation.Schema {
	return relation.MustSchema([]relation.Attribute{
		{Name: "Visit_Nbr", Type: relation.TypeInt},
		{Name: "Item_Nbr", Type: relation.TypeInt, Categorical: true},
	}, "Visit_Nbr")
}

// ItemNbr renders the catalog item at rank k as an Item_Nbr value. Item
// numbers start at 10000 so that all values share a digit width, as real
// product codes do.
func ItemNbr(k int) string { return strconv.Itoa(10000 + k) }

// ItemScan generates the synthetic ItemScan relation and the full product
// catalog domain (including items that happen not to occur in this sample —
// the detector needs the catalog, not the sample, per relation.Domain docs).
func ItemScan(cfg ItemScanConfig) (*relation.Relation, *relation.Domain, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	src := stats.NewSource("itemscan/" + cfg.Seed)
	zipf := stats.NewZipf(cfg.CatalogSize, cfg.ZipfS)

	r := relation.New(ItemScanSchema())
	// Visit numbers: a shuffled dense range with a base offset, like a
	// sequence-allocated key column sampled out of a bigger table.
	perm := src.Perm(cfg.N)
	for i := 0; i < cfg.N; i++ {
		visit := strconv.Itoa(500000 + perm[i])
		item := ItemNbr(zipf.Sample(src))
		if err := r.Append(relation.Tuple{visit, item}); err != nil {
			return nil, nil, fmt.Errorf("datagen: %w", err)
		}
	}

	catalog := make([]string, cfg.CatalogSize)
	for k := range catalog {
		catalog[k] = ItemNbr(k)
	}
	dom, err := relation.NewDomain(catalog)
	if err != nil {
		return nil, nil, err
	}
	return r, dom, nil
}

// AirlineConfig parameterises the airline-reservation generator.
type AirlineConfig struct {
	// N is the number of reservation tuples.
	N int
	// Cities is the number of distinct departure cities (default 50).
	Cities int
	// Airlines is the number of distinct carriers (default 20).
	Airlines int
	// Seed makes generation reproducible.
	Seed string
}

// DefaultAirlineConfig returns a moderate-size reservation workload.
func DefaultAirlineConfig() AirlineConfig {
	return AirlineConfig{N: 10000, Cities: 50, Airlines: 20, Seed: "airline"}
}

// AirlineSchema returns the (ticket, departure_city, airline) schema used
// by the Section 3.3 multi-attribute embedding examples.
func AirlineSchema() *relation.Schema {
	return relation.MustSchema([]relation.Attribute{
		{Name: "ticket", Type: relation.TypeInt},
		{Name: "departure_city", Type: relation.TypeString, Categorical: true},
		{Name: "airline", Type: relation.TypeString, Categorical: true},
	}, "ticket")
}

// CityName renders city k as a stable label.
func CityName(k int) string { return fmt.Sprintf("CITY_%03d", k) }

// AirlineName renders carrier k as a stable label.
func AirlineName(k int) string { return fmt.Sprintf("AIR_%02d", k) }

// Airline generates the reservation relation plus the city and airline
// catalog domains.
func Airline(cfg AirlineConfig) (*relation.Relation, *relation.Domain, *relation.Domain, error) {
	if cfg.N <= 0 {
		return nil, nil, nil, fmt.Errorf("datagen: N must be positive, got %d", cfg.N)
	}
	if cfg.Cities < 2 || cfg.Airlines < 2 {
		return nil, nil, nil, fmt.Errorf("datagen: need at least 2 cities and 2 airlines")
	}
	src := stats.NewSource("airline/" + cfg.Seed)
	cityZipf := stats.NewZipf(cfg.Cities, 0.8)  // hub-dominated traffic
	airZipf := stats.NewZipf(cfg.Airlines, 0.6) // major-carrier skew

	r := relation.New(AirlineSchema())
	for i := 0; i < cfg.N; i++ {
		t := relation.Tuple{
			strconv.Itoa(9000000 + i),
			CityName(cityZipf.Sample(src)),
			AirlineName(airZipf.Sample(src)),
		}
		if err := r.Append(t); err != nil {
			return nil, nil, nil, fmt.Errorf("datagen: %w", err)
		}
	}

	cities := make([]string, cfg.Cities)
	for k := range cities {
		cities[k] = CityName(k)
	}
	airs := make([]string, cfg.Airlines)
	for k := range airs {
		airs[k] = AirlineName(k)
	}
	cityDom, err := relation.NewDomain(cities)
	if err != nil {
		return nil, nil, nil, err
	}
	airDom, err := relation.NewDomain(airs)
	if err != nil {
		return nil, nil, nil, err
	}
	return r, cityDom, airDom, nil
}
