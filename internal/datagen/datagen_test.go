package datagen

import (
	"testing"

	"repro/internal/relation"
)

func TestItemScanShape(t *testing.T) {
	cfg := ItemScanConfig{N: 5000, CatalogSize: 100, ZipfS: 1.0, Seed: "t"}
	r, dom, err := ItemScan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != cfg.N {
		t.Fatalf("N = %d, want %d", r.Len(), cfg.N)
	}
	if dom.Size() != cfg.CatalogSize {
		t.Fatalf("catalog %d, want %d", dom.Size(), cfg.CatalogSize)
	}
	if r.Schema().KeyName() != "Visit_Nbr" {
		t.Fatalf("key %q", r.Schema().KeyName())
	}
	// Every item value must be in the catalog domain.
	for i := 0; i < r.Len(); i++ {
		v, _ := r.Value(i, "Item_Nbr")
		if !dom.Contains(v) {
			t.Fatalf("row %d item %q outside catalog", i, v)
		}
	}
}

func TestItemScanDeterministic(t *testing.T) {
	cfg := ItemScanConfig{N: 1000, CatalogSize: 50, ZipfS: 1.0, Seed: "same"}
	a, _, err := ItemScan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ItemScan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed produced different data")
	}
	cfg.Seed = "different"
	c, _, err := ItemScan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("different seed produced identical data")
	}
}

func TestItemScanKeysUnique(t *testing.T) {
	r, _, err := ItemScan(ItemScanConfig{N: 3000, CatalogSize: 30, ZipfS: 1, Seed: "u"})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, r.Len())
	for i := 0; i < r.Len(); i++ {
		k := r.Key(i)
		if seen[k] {
			t.Fatalf("duplicate visit number %s", k)
		}
		seen[k] = true
	}
}

func TestItemScanZipfSkew(t *testing.T) {
	r, _, err := ItemScan(ItemScanConfig{N: 20000, CatalogSize: 100, ZipfS: 1.0, Seed: "z"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := relation.HistogramOf(r, "Item_Nbr")
	if err != nil {
		t.Fatal(err)
	}
	// Rank-0 item should be far more frequent than a tail item — the
	// non-uniformity the frequency channel depends on (Section 4.2).
	top := h.Freq(ItemNbr(0))
	tail := h.Freq(ItemNbr(99))
	if top < 5*tail {
		t.Fatalf("no Zipf skew: top %v vs tail %v", top, tail)
	}
}

func TestItemScanUniformOption(t *testing.T) {
	r, _, err := ItemScan(ItemScanConfig{N: 20000, CatalogSize: 10, ZipfS: 0, Seed: "flat"})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := relation.HistogramOf(r, "Item_Nbr")
	for k := 0; k < 10; k++ {
		f := h.Freq(ItemNbr(k))
		if f < 0.07 || f > 0.13 {
			t.Fatalf("uniform item %d freq %v", k, f)
		}
	}
}

func TestItemScanConfigValidation(t *testing.T) {
	bad := []ItemScanConfig{
		{N: 0, CatalogSize: 10, ZipfS: 1},
		{N: 10, CatalogSize: 1, ZipfS: 1},
		{N: 10, CatalogSize: 10, ZipfS: -1},
	}
	for i, cfg := range bad {
		if _, _, err := ItemScan(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestPaperConfigMatchesSection5(t *testing.T) {
	cfg := PaperItemScanConfig()
	if cfg.N != 141000 {
		t.Fatalf("paper N = %d, want 141000", cfg.N)
	}
}

func TestAirlineShape(t *testing.T) {
	cfg := AirlineConfig{N: 2000, Cities: 30, Airlines: 8, Seed: "a"}
	r, cities, airs, err := Airline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != cfg.N || cities.Size() != 30 || airs.Size() != 8 {
		t.Fatalf("shape %d/%d/%d", r.Len(), cities.Size(), airs.Size())
	}
	cats := r.Schema().CategoricalAttrs()
	if len(cats) != 2 {
		t.Fatalf("categorical attrs %v", cats)
	}
	for i := 0; i < r.Len(); i++ {
		c, _ := r.Value(i, "departure_city")
		a, _ := r.Value(i, "airline")
		if !cities.Contains(c) || !airs.Contains(a) {
			t.Fatalf("row %d values outside catalogs: %q %q", i, c, a)
		}
	}
}

func TestAirlineDeterministic(t *testing.T) {
	cfg := DefaultAirlineConfig()
	cfg.N = 500
	a, _, _, err := Airline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, _, err := Airline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("airline generation not deterministic")
	}
}

func TestAirlineValidation(t *testing.T) {
	if _, _, _, err := Airline(AirlineConfig{N: 0, Cities: 5, Airlines: 5}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, _, _, err := Airline(AirlineConfig{N: 10, Cities: 1, Airlines: 5}); err == nil {
		t.Error("1 city accepted")
	}
}
