package ecc

import "testing"

func benchWM() Bits { return MustParseBits("1011001110") }

func BenchmarkMajorityEncode(b *testing.B) {
	wm := benchWM()
	code := MajorityCode{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := code.Encode(wm, 2048); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMajorityDecode(b *testing.B) {
	wm := benchWM()
	code := MajorityCode{}
	data, err := code.Encode(wm, 2048)
	if err != nil {
		b.Fatal(err)
	}
	// Corrupt a third of the positions so decoding does real vote work.
	for i := 0; i < len(data); i += 3 {
		data[i] ^= 1
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := code.Decode(data, len(wm)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHammingDistance(b *testing.B) {
	x := NewBits(4096)
	y := NewBits(4096)
	for i := range y {
		y[i] = uint8(i & 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HammingDistance(x, y)
	}
}
