package ecc

import (
	"errors"
	"fmt"
)

// Code is an error-correcting code over watermark bits. Encode expands a
// |wm|-bit watermark into an outLen-bit wm_data string; Decode recovers the
// most likely watermark from a (possibly corrupted, possibly partially
// erased) wm_data.
type Code interface {
	// Name identifies the code in reports and benchmarks.
	Name() string
	// Encode returns wm_data = encode(wm, outLen). outLen must be at least
	// len(wm); the watermark must contain no erasures.
	Encode(wm Bits, outLen int) (Bits, error)
	// Decode returns the most likely wm of length wmLen from data.
	Decode(data Bits, wmLen int) (Bits, error)
}

// Common argument validation shared by the codes.
func checkEncodeArgs(wm Bits, outLen int) error {
	if len(wm) == 0 {
		return errors.New("ecc: empty watermark")
	}
	if outLen < len(wm) {
		return fmt.Errorf("ecc: bandwidth %d smaller than watermark %d bits "+
			"(insufficient embedding bandwidth, decrease e or shorten wm)",
			outLen, len(wm))
	}
	for i, b := range wm {
		if b != Zero && b != One {
			return fmt.Errorf("ecc: watermark bit %d is not 0/1", i)
		}
	}
	return nil
}

func checkDecodeArgs(data Bits, wmLen int) error {
	if wmLen <= 0 {
		return errors.New("ecc: non-positive watermark length")
	}
	if len(data) < wmLen {
		return fmt.Errorf("ecc: data %d bits shorter than watermark %d bits",
			len(data), wmLen)
	}
	return data.Validate()
}

// MajorityCode is the paper's majority-voting code in an interleaved
// layout: wm_data position i carries watermark bit i mod |wm|, so each
// watermark bit is replicated ~outLen/|wm| times and the replicas are
// spread evenly across the embedding bandwidth. Decoding majority-votes
// each watermark bit over its replica positions, skipping erasures; ties
// and all-erased groups resolve to the DefaultBit.
type MajorityCode struct {
	// DefaultBit breaks ties and fills all-erased groups. Zero by default.
	DefaultBit uint8
}

// Name implements Code.
func (MajorityCode) Name() string { return "majority-interleaved" }

// Encode implements Code.
func (MajorityCode) Encode(wm Bits, outLen int) (Bits, error) {
	if err := checkEncodeArgs(wm, outLen); err != nil {
		return nil, err
	}
	out := make(Bits, outLen)
	for i := range out {
		out[i] = wm[i%len(wm)]
	}
	return out, nil
}

// Decode implements Code.
func (c MajorityCode) Decode(data Bits, wmLen int) (Bits, error) {
	if err := checkDecodeArgs(data, wmLen); err != nil {
		return nil, err
	}
	votes := c.Votes(data, wmLen)
	out := make(Bits, wmLen)
	for i, v := range votes {
		out[i] = v.Winner(c.DefaultBit)
	}
	return out, nil
}

// Votes tallies per-watermark-bit replica votes; exported so detection
// reports can show confidence margins (used by the courtroom example).
func (MajorityCode) Votes(data Bits, wmLen int) []VoteTally {
	votes := make([]VoteTally, wmLen)
	for i, b := range data {
		switch b {
		case Zero:
			votes[i%wmLen].Zeros++
		case One:
			votes[i%wmLen].Ones++
		default:
			votes[i%wmLen].Erasures++
		}
	}
	return votes
}

// BlockMajorityCode is the majority-voting code in a blocked layout:
// wm_data is divided into |wm| contiguous blocks and block i carries
// watermark bit i. Provided as an ablation — contiguous layouts are more
// fragile under clustered loss, which the ablation bench demonstrates.
type BlockMajorityCode struct {
	DefaultBit uint8
}

// Name implements Code.
func (BlockMajorityCode) Name() string { return "majority-blocked" }

// Encode implements Code.
func (BlockMajorityCode) Encode(wm Bits, outLen int) (Bits, error) {
	if err := checkEncodeArgs(wm, outLen); err != nil {
		return nil, err
	}
	out := make(Bits, outLen)
	for i := range out {
		bit := i * len(wm) / outLen
		out[i] = wm[bit]
	}
	return out, nil
}

// Decode implements Code.
func (c BlockMajorityCode) Decode(data Bits, wmLen int) (Bits, error) {
	if err := checkDecodeArgs(data, wmLen); err != nil {
		return nil, err
	}
	votes := make([]VoteTally, wmLen)
	for i, b := range data {
		g := i * wmLen / len(data)
		switch b {
		case Zero:
			votes[g].Zeros++
		case One:
			votes[g].Ones++
		default:
			votes[g].Erasures++
		}
	}
	out := make(Bits, wmLen)
	for i, v := range votes {
		out[i] = v.Winner(c.DefaultBit)
	}
	return out, nil
}

// IdentityCode performs no redundancy: wm_data is wm truncated/padded to
// outLen with repetition disabled — only the first |wm| positions carry
// information and the rest are zero filler. It exists to quantify, in the
// ablation benches, how much resilience the majority code buys.
type IdentityCode struct{}

// Name implements Code.
func (IdentityCode) Name() string { return "identity" }

// Encode implements Code.
func (IdentityCode) Encode(wm Bits, outLen int) (Bits, error) {
	if err := checkEncodeArgs(wm, outLen); err != nil {
		return nil, err
	}
	out := make(Bits, outLen)
	copy(out, wm)
	return out, nil
}

// Decode implements Code.
func (IdentityCode) Decode(data Bits, wmLen int) (Bits, error) {
	if err := checkDecodeArgs(data, wmLen); err != nil {
		return nil, err
	}
	out := make(Bits, wmLen)
	for i := 0; i < wmLen; i++ {
		if data[i] == Erased {
			out[i] = Zero
		} else {
			out[i] = data[i]
		}
	}
	return out, nil
}

// VoteTally is the per-bit vote count produced during majority decoding.
type VoteTally struct {
	Zeros, Ones, Erasures int
}

// Winner returns the majority bit, or def on ties / all-erasure.
func (v VoteTally) Winner(def uint8) uint8 {
	switch {
	case v.Ones > v.Zeros:
		return One
	case v.Zeros > v.Ones:
		return Zero
	default:
		return def
	}
}

// Margin returns |ones − zeros| / (ones + zeros): the strength of the
// majority, 1 = unanimous, 0 = tie. Returns 0 when no votes were cast.
func (v VoteTally) Margin() float64 {
	total := v.Ones + v.Zeros
	if total == 0 {
		return 0
	}
	d := v.Ones - v.Zeros
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(total)
}

// Registry of codes by name, used by the CLI flags.
var registry = map[string]Code{
	MajorityCode{}.Name():      MajorityCode{},
	BlockMajorityCode{}.Name(): BlockMajorityCode{},
	IdentityCode{}.Name():      IdentityCode{},
}

// ByName returns a registered code.
func ByName(name string) (Code, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("ecc: unknown code %q", name)
	}
	return c, nil
}

// Names lists the registered code names.
func Names() []string {
	return []string{
		MajorityCode{}.Name(),
		BlockMajorityCode{}.Name(),
		IdentityCode{}.Name(),
	}
}
