package ecc

import (
	"testing"
	"testing/quick"
)

func TestParseBitsRoundTrip(t *testing.T) {
	for _, s := range []string{"", "0", "1", "1010", "1?0?1"} {
		b, err := ParseBits(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if b.String() != s {
			t.Errorf("round trip %q -> %q", s, b.String())
		}
	}
}

func TestParseBitsInvalid(t *testing.T) {
	if _, err := ParseBits("10a1"); err == nil {
		t.Fatal("invalid character accepted")
	}
}

func TestMustParseBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseBits("2")
}

func TestFromUint64(t *testing.T) {
	cases := []struct {
		v    uint64
		n    int
		want string
	}{
		{0b1011, 4, "1011"},
		{0b1011, 6, "001011"},
		{0, 3, "000"},
		{0b1, 1, "1"},
		{^uint64(0), 8, "11111111"},
	}
	for _, c := range cases {
		if got := FromUint64(c.v, c.n).String(); got != c.want {
			t.Errorf("FromUint64(%b,%d) = %s, want %s", c.v, c.n, got, c.want)
		}
	}
}

func TestUint64RoundTrip(t *testing.T) {
	f := func(v uint64, n8 uint8) bool {
		n := int(n8%64) + 1
		masked := v & ((1 << uint(n)) - 1)
		return FromUint64(masked, n).Uint64() == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64ErasedReadsZero(t *testing.T) {
	b := MustParseBits("1?1")
	if got := b.Uint64(); got != 0b101 {
		t.Fatalf("got %b, want 101", got)
	}
}

func TestUint64PanicsTooLong(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBits(65).Uint64()
}

func TestNewErased(t *testing.T) {
	b := NewErased(4)
	if b.String() != "????" {
		t.Fatalf("got %s", b.String())
	}
}

func TestValidate(t *testing.T) {
	good := Bits{Zero, One, Erased}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Bits{Zero, 7}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid value accepted")
	}
}

func TestHammingDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1010", "1010", 0},
		{"1010", "0101", 4},
		{"111", "110", 1},
		{"1?0", "1?0", 0}, // matching erasures equal
		{"1?0", "110", 1}, // erasure differs from a bit
		{"", "", 0},
	}
	for _, c := range cases {
		got := HammingDistance(MustParseBits(c.a), MustParseBits(c.b))
		if got != c.want {
			t.Errorf("Hamming(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHammingDistancePanicsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HammingDistance(NewBits(3), NewBits(4))
}

func TestAlterationRate(t *testing.T) {
	if got := AlterationRate(MustParseBits("1111"), MustParseBits("1100")); got != 0.5 {
		t.Fatalf("rate = %v, want 0.5", got)
	}
	if got := AlterationRate(Bits{}, Bits{}); got != 0 {
		t.Fatalf("empty rate = %v", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := MustParseBits("101")
	b := a.Clone()
	b[0] = Zero
	if a[0] != One {
		t.Fatal("clone aliased storage")
	}
}
