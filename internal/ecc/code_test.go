package ecc

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func allCodes() []Code {
	return []Code{MajorityCode{}, BlockMajorityCode{}, IdentityCode{}}
}

func TestEncodeDecodeIdentityNoNoise(t *testing.T) {
	wm := MustParseBits("1011001110")
	for _, code := range allCodes() {
		for _, outLen := range []int{10, 37, 100, 1000} {
			data, err := code.Encode(wm, outLen)
			if err != nil {
				t.Fatalf("%s/%d: %v", code.Name(), outLen, err)
			}
			if len(data) != outLen {
				t.Fatalf("%s: encoded length %d, want %d", code.Name(), len(data), outLen)
			}
			got, err := code.Decode(data, len(wm))
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != wm.String() {
				t.Errorf("%s/%d: round trip %s -> %s", code.Name(), outLen, wm, got)
			}
		}
	}
}

func TestEncodeArgValidation(t *testing.T) {
	for _, code := range allCodes() {
		if _, err := code.Encode(Bits{}, 10); err == nil {
			t.Errorf("%s: empty wm accepted", code.Name())
		}
		if _, err := code.Encode(MustParseBits("1010"), 3); err == nil {
			t.Errorf("%s: insufficient bandwidth accepted", code.Name())
		}
		if _, err := code.Encode(Bits{Zero, Erased}, 10); err == nil {
			t.Errorf("%s: erased wm bit accepted", code.Name())
		}
	}
}

func TestDecodeArgValidation(t *testing.T) {
	for _, code := range allCodes() {
		if _, err := code.Decode(NewBits(4), 0); err == nil {
			t.Errorf("%s: zero wmLen accepted", code.Name())
		}
		if _, err := code.Decode(NewBits(4), 5); err == nil {
			t.Errorf("%s: short data accepted", code.Name())
		}
		if _, err := code.Decode(Bits{9}, 1); err == nil {
			t.Errorf("%s: invalid data bit accepted", code.Name())
		}
	}
}

// Majority codes must correct any corruption touching a strict minority of
// each bit's replicas.
func TestMajorityCorrectsMinorityFlips(t *testing.T) {
	wm := MustParseBits("10110")
	for _, code := range []Code{MajorityCode{}, BlockMajorityCode{}} {
		data, err := code.Encode(wm, 50) // 10 replicas per bit
		if err != nil {
			t.Fatal(err)
		}
		// Flip 4 of the 10 replicas of every bit.
		corrupted := data.Clone()
		flipped := make(map[int]int) // wm bit -> flips so far
		for i := range corrupted {
			var g int
			switch code.(type) {
			case MajorityCode:
				g = i % len(wm)
			default:
				g = i * len(wm) / len(corrupted)
			}
			if flipped[g] < 4 {
				corrupted[i] ^= 1
				flipped[g]++
			}
		}
		got, err := code.Decode(corrupted, len(wm))
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != wm.String() {
			t.Errorf("%s: minority flips not corrected: %s -> %s", code.Name(), wm, got)
		}
	}
}

func TestMajorityFailsUnderMajorityFlips(t *testing.T) {
	wm := MustParseBits("10110")
	code := MajorityCode{}
	data, _ := code.Encode(wm, 50)
	for i := range data {
		data[i] ^= 1 // flip everything
	}
	got, _ := code.Decode(data, len(wm))
	if HammingDistance(got, wm) != len(wm) {
		t.Errorf("total inversion should flip all bits: %s -> %s", wm, got)
	}
}

func TestMajorityHandlesErasures(t *testing.T) {
	wm := MustParseBits("1100")
	code := MajorityCode{}
	data, _ := code.Encode(wm, 40)
	// Erase 70% of positions: survivors still vote correctly.
	src := stats.NewSource("erasure-test")
	for _, i := range src.Sample(len(data), 28) {
		data[i] = Erased
	}
	got, err := code.Decode(data, len(wm))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != wm.String() {
		t.Errorf("erasures broke decode: %s -> %s", wm, got)
	}
}

func TestMajorityAllErasedUsesDefault(t *testing.T) {
	for _, def := range []uint8{Zero, One} {
		code := MajorityCode{DefaultBit: def}
		got, err := code.Decode(NewErased(20), 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range got {
			if b != def {
				t.Errorf("default %d: bit %d = %d", def, i, b)
			}
		}
	}
}

func TestVoteTallyWinnerAndMargin(t *testing.T) {
	cases := []struct {
		v      VoteTally
		def    uint8
		want   uint8
		margin float64
	}{
		{VoteTally{Zeros: 3, Ones: 7}, Zero, One, 0.4},
		{VoteTally{Zeros: 7, Ones: 3}, One, Zero, 0.4},
		{VoteTally{Zeros: 5, Ones: 5}, One, One, 0},
		{VoteTally{Erasures: 10}, Zero, Zero, 0},
	}
	for _, c := range cases {
		if got := c.v.Winner(c.def); got != c.want {
			t.Errorf("Winner(%+v) = %d, want %d", c.v, got, c.want)
		}
		if got := c.v.Margin(); got != c.margin {
			t.Errorf("Margin(%+v) = %v, want %v", c.v, got, c.margin)
		}
	}
}

// Property: for every code, encode→decode with no corruption is identity,
// for random watermarks and bandwidths.
func TestRoundTripProperty(t *testing.T) {
	src := stats.NewSource("ecc-prop")
	f := func(wmLenRaw, extraRaw uint8) bool {
		wmLen := int(wmLenRaw%32) + 1
		outLen := wmLen + int(extraRaw)
		wm := make(Bits, wmLen)
		for i := range wm {
			wm[i] = src.Bit()
		}
		for _, code := range allCodes() {
			data, err := code.Encode(wm, outLen)
			if err != nil {
				return false
			}
			got, err := code.Decode(data, wmLen)
			if err != nil {
				return false
			}
			if HammingDistance(got, wm) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved majority tolerates random flips below ~half of
// replicas with overwhelming experimental likelihood. We check a weaker,
// deterministic bound: flipping < replicas/2 positions in total can change
// at most the bits whose replica groups were hit by a majority, which for
// < replicas/2 total flips is none.
func TestMajorityDeterministicGuarantee(t *testing.T) {
	wm := MustParseBits("101100111000")
	code := MajorityCode{}
	const reps = 9
	data, _ := code.Encode(wm, len(wm)*reps)
	// Any flip pattern touching at most (reps-1)/2 = 4 replicas of each
	// group cannot change the outcome. Build the worst such pattern.
	corrupted := data.Clone()
	for g := 0; g < len(wm); g++ {
		for k := 0; k < (reps-1)/2; k++ {
			corrupted[g+k*len(wm)] ^= 1
		}
	}
	got, _ := code.Decode(corrupted, len(wm))
	if got.String() != wm.String() {
		t.Fatalf("guaranteed-correctable pattern failed: %s -> %s", wm, got)
	}
}

func TestIdentityCodeNoResilience(t *testing.T) {
	wm := MustParseBits("1010")
	code := IdentityCode{}
	data, _ := code.Encode(wm, 40)
	data[0] ^= 1 // single flip in the information region
	got, _ := code.Decode(data, len(wm))
	if HammingDistance(got, wm) == 0 {
		t.Fatal("identity code should not correct anything")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil || c.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("reed-solomon"); err == nil {
		t.Error("unknown code accepted")
	}
}
