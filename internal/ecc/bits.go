// Package ecc implements the error-correcting codes the watermarking
// algorithm deploys over its embedding bandwidth (Section 3.2.1): the
// watermark wm (|wm| bits) is expanded into wm_data (N/e bits) before
// embedding — wm_data = ECC.encode(wm, N/e) — and majority voting recovers
// the most likely wm from a corrupted wm_data at detection time —
// wm = ECC.decode(wm_data, |wm|). The paper deploys majority voting codes;
// this package provides them in two layouts plus an identity code for
// ablation benchmarks.
package ecc

import (
	"fmt"
	"strings"
)

// Bit values stored in Bits. Erased marks a wm_data position that no fit
// tuple voted for at detection time (possible after data loss); decoders
// skip erased positions instead of treating them as zeros.
const (
	Zero   uint8 = 0
	One    uint8 = 1
	Erased uint8 = 0xFF
)

// Bits is a sequence of watermark bits (values Zero, One or Erased).
type Bits []uint8

// NewBits returns an all-zero bit string of length n.
func NewBits(n int) Bits { return make(Bits, n) }

// NewErased returns a bit string of length n with every position erased.
func NewErased(n int) Bits {
	b := make(Bits, n)
	for i := range b {
		b[i] = Erased
	}
	return b
}

// ParseBits parses a string like "1011001010" into Bits. '?' marks an
// erased position.
func ParseBits(s string) (Bits, error) {
	b := make(Bits, len(s))
	for i, c := range s {
		switch c {
		case '0':
			b[i] = Zero
		case '1':
			b[i] = One
		case '?':
			b[i] = Erased
		default:
			return nil, fmt.Errorf("ecc: invalid bit character %q at %d", c, i)
		}
	}
	return b, nil
}

// MustParseBits is ParseBits that panics on error.
func MustParseBits(s string) Bits {
	b, err := ParseBits(s)
	if err != nil {
		panic(err)
	}
	return b
}

// FromUint64 returns the low n bits of v, most significant first.
func FromUint64(v uint64, n int) Bits {
	if n < 0 || n > 64 {
		panic("ecc: bit width out of range [0,64]")
	}
	b := make(Bits, n)
	for i := 0; i < n; i++ {
		b[i] = uint8((v >> uint(n-1-i)) & 1)
	}
	return b
}

// Uint64 packs the bits (most significant first) into a uint64. Erased
// positions read as zero. Panics beyond 64 bits.
func (b Bits) Uint64() uint64 {
	if len(b) > 64 {
		panic("ecc: more than 64 bits")
	}
	var v uint64
	for _, bit := range b {
		v <<= 1
		if bit == One {
			v |= 1
		}
	}
	return v
}

// String renders the bits as '0'/'1'/'?'.
func (b Bits) String() string {
	var sb strings.Builder
	sb.Grow(len(b))
	for _, bit := range b {
		switch bit {
		case Zero:
			sb.WriteByte('0')
		case One:
			sb.WriteByte('1')
		default:
			sb.WriteByte('?')
		}
	}
	return sb.String()
}

// Clone returns an independent copy.
func (b Bits) Clone() Bits { return append(Bits(nil), b...) }

// Validate checks that every position is Zero, One or Erased.
func (b Bits) Validate() error {
	for i, bit := range b {
		if bit != Zero && bit != One && bit != Erased {
			return fmt.Errorf("ecc: invalid bit value %d at position %d", bit, i)
		}
	}
	return nil
}

// HammingDistance counts positions where the two bit strings differ.
// Erased positions count as differing from anything except another
// erasure. Panics on length mismatch.
func HammingDistance(a, b Bits) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ecc: length mismatch %d vs %d", len(a), len(b)))
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// AlterationRate returns HammingDistance(a,b) / len(a): the "mark
// alteration" metric plotted on the Y axis of the paper's Figures 4–7.
// Returns 0 for empty input.
func AlterationRate(a, b Bits) float64 {
	if len(a) == 0 {
		return 0
	}
	return float64(HammingDistance(a, b)) / float64(len(a))
}
