package attacks

import (
	"strconv"
	"testing"

	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/stats"
)

func attackData(t *testing.T, n int) (*relation.Relation, *relation.Domain) {
	t.Helper()
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: n, CatalogSize: 100, ZipfS: 1.0, Seed: "attack-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, dom
}

func TestHorizontalSubsetSize(t *testing.T) {
	r, _ := attackData(t, 5000)
	src := stats.NewSource("a1")
	for _, keep := range []float64{0.9, 0.5, 0.1} {
		sub, err := HorizontalSubset(r, keep, src)
		if err != nil {
			t.Fatal(err)
		}
		want := int(5000 * keep)
		if sub.Len() != want {
			t.Fatalf("keep=%v: %d tuples, want %d", keep, sub.Len(), want)
		}
	}
}

func TestHorizontalSubsetPreservesOrderAndContent(t *testing.T) {
	r, _ := attackData(t, 2000)
	sub, err := HorizontalSubset(r, 0.5, stats.NewSource("a1-order"))
	if err != nil {
		t.Fatal(err)
	}
	// Every surviving tuple matches its original by key, and survivors
	// appear in original relative order.
	lastIdx := -1
	for i := 0; i < sub.Len(); i++ {
		origIdx, ok := r.Lookup(sub.Key(i))
		if !ok {
			t.Fatalf("subset invented key %s", sub.Key(i))
		}
		if origIdx <= lastIdx {
			t.Fatal("subset reordered tuples")
		}
		lastIdx = origIdx
		v1, _ := sub.Value(i, "Item_Nbr")
		v2, _ := r.Value(origIdx, "Item_Nbr")
		if v1 != v2 {
			t.Fatal("subset altered a value")
		}
	}
}

func TestHorizontalSubsetInputUntouched(t *testing.T) {
	r, _ := attackData(t, 1000)
	orig := r.Clone()
	if _, err := HorizontalSubset(r, 0.3, stats.NewSource("x")); err != nil {
		t.Fatal(err)
	}
	if !r.Equal(orig) {
		t.Fatal("attack mutated its input")
	}
}

func TestHorizontalSubsetErrors(t *testing.T) {
	r, _ := attackData(t, 100)
	src := stats.NewSource("e")
	for _, keep := range []float64{0, -0.5, 1.5} {
		if _, err := HorizontalSubset(r, keep, src); err == nil {
			t.Errorf("keep=%v accepted", keep)
		}
	}
	empty := relation.New(r.Schema())
	if _, err := HorizontalSubset(empty, 0.5, src); err == nil {
		t.Error("empty relation accepted")
	}
}

func TestHorizontalSubsetMinimumOne(t *testing.T) {
	r, _ := attackData(t, 10)
	sub, err := HorizontalSubset(r, 0.01, stats.NewSource("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 1 {
		t.Fatalf("kept %d, want 1", sub.Len())
	}
}

func TestSubsetAddition(t *testing.T) {
	r, dom := attackData(t, 4000)
	out, err := SubsetAddition(r, 0.25, stats.NewSource("a2"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5000 {
		t.Fatalf("size %d, want 5000", out.Len())
	}
	// Original tuples intact.
	for i := 0; i < r.Len(); i++ {
		j, ok := out.Lookup(r.Key(i))
		if !ok {
			t.Fatalf("original key %s lost", r.Key(i))
		}
		v1, _ := r.Value(i, "Item_Nbr")
		v2, _ := out.Value(j, "Item_Nbr")
		if v1 != v2 {
			t.Fatal("addition altered an original tuple")
		}
	}
	// Added values come from the existing domain (distribution-conforming).
	for i := r.Len(); i < out.Len(); i++ {
		v, _ := out.Value(i, "Item_Nbr")
		if !dom.Contains(v) {
			t.Fatalf("added value %q outside domain", v)
		}
	}
}

func TestSubsetAdditionZero(t *testing.T) {
	r, _ := attackData(t, 500)
	out, err := SubsetAddition(r, 0, stats.NewSource("z"))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(r) {
		t.Fatal("zero addition changed the relation")
	}
}

func TestSubsetAdditionMatchesDistribution(t *testing.T) {
	r, _ := attackData(t, 20000)
	out, err := SubsetAddition(r, 1.0, stats.NewSource("dist")) // double the data
	if err != nil {
		t.Fatal(err)
	}
	hOrig, _ := relation.HistogramOf(r, "Item_Nbr")
	hOut, _ := relation.HistogramOf(out, "Item_Nbr")
	if d := hOrig.L1Distance(hOut); d > 0.05 {
		t.Fatalf("added data drifted distribution by L1=%v", d)
	}
}

func TestSubsetAlteration(t *testing.T) {
	r, dom := attackData(t, 4000)
	out, err := SubsetAlteration(r, "Item_Nbr", 0.3, dom, stats.NewSource("a3"))
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := 0; i < r.Len(); i++ {
		v1, _ := r.Value(i, "Item_Nbr")
		v2, _ := out.Value(i, "Item_Nbr")
		if v1 != v2 {
			changed++
			if !dom.Contains(v2) {
				t.Fatalf("altered value %q outside domain", v2)
			}
		}
	}
	if changed != 1200 {
		t.Fatalf("altered %d tuples, want exactly 1200", changed)
	}
}

func TestSubsetAlterationAlwaysChangesValue(t *testing.T) {
	// frac=1: every tuple must have a *different* value afterwards.
	r, dom := attackData(t, 1000)
	out, err := SubsetAlteration(r, "Item_Nbr", 1.0, dom, stats.NewSource("all"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Len(); i++ {
		v1, _ := r.Value(i, "Item_Nbr")
		v2, _ := out.Value(i, "Item_Nbr")
		if v1 == v2 {
			t.Fatalf("row %d kept its value under frac=1", i)
		}
	}
}

func TestSubsetAlterationErrors(t *testing.T) {
	r, dom := attackData(t, 100)
	src := stats.NewSource("e3")
	if _, err := SubsetAlteration(r, "ghost", 0.1, dom, src); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := SubsetAlteration(r, "Item_Nbr", -0.1, dom, src); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := SubsetAlteration(r, "Item_Nbr", 1.1, dom, src); err == nil {
		t.Error("fraction > 1 accepted")
	}
	tiny := relation.MustDomain([]string{"one"})
	if _, err := SubsetAlteration(r, "Item_Nbr", 0.1, tiny, src); err == nil {
		t.Error("single-value domain accepted")
	}
}

func TestResortPreservesContent(t *testing.T) {
	r, _ := attackData(t, 3000)
	out := Resort(r, stats.NewSource("a4"))
	if !out.EqualUnordered(r) {
		t.Fatal("resort changed content")
	}
	if out.Equal(r) {
		t.Fatal("resort produced the identical order (3000 tuples!)")
	}
}

func TestSortByAttr(t *testing.T) {
	r, _ := attackData(t, 500)
	out, err := SortByAttr(r, "Item_Nbr")
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualUnordered(r) {
		t.Fatal("sort changed content")
	}
	for i := 1; i < out.Len(); i++ {
		a, _ := out.Value(i-1, "Item_Nbr")
		b, _ := out.Value(i, "Item_Nbr")
		ai, _ := strconv.Atoi(a)
		bi, _ := strconv.Atoi(b)
		if ai > bi {
			t.Fatal("not sorted")
		}
	}
	if _, err := SortByAttr(r, "ghost"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestVerticalPartition(t *testing.T) {
	r, _ := attackData(t, 1000)
	part, dropped, err := VerticalPartition(r, "Item_Nbr")
	if err != nil {
		t.Fatal(err)
	}
	if part.Schema().Arity() != 1 {
		t.Fatal("projection kept extra attributes")
	}
	if part.Len()+dropped != 1000 {
		t.Fatalf("partition lost tuples: %d + %d != 1000", part.Len(), dropped)
	}
}

func TestBijectiveRemap(t *testing.T) {
	r, dom := attackData(t, 3000)
	out, forward, err := BijectiveRemap(r, "Item_Nbr", stats.NewSource("a6"))
	if err != nil {
		t.Fatal(err)
	}
	if len(forward) > dom.Size() {
		t.Fatalf("mapping has %d entries for %d values", len(forward), dom.Size())
	}
	// Bijectivity: distinct values map to distinct images.
	img := map[string]bool{}
	for _, v := range forward {
		if img[v] {
			t.Fatal("mapping not injective")
		}
		img[v] = true
	}
	// Every tuple's value is the image of its original.
	for i := 0; i < r.Len(); i++ {
		v1, _ := r.Value(i, "Item_Nbr")
		v2, _ := out.Value(i, "Item_Nbr")
		if forward[v1] != v2 {
			t.Fatalf("row %d: %q should map to %q, got %q", i, v1, forward[v1], v2)
		}
	}
	// Frequencies are preserved under the bijection.
	hOrig, _ := relation.HistogramOf(r, "Item_Nbr")
	hOut, _ := relation.HistogramOf(out, "Item_Nbr")
	for _, l := range hOrig.Labels() {
		if hOrig.Count(l) != hOut.Count(forward[l]) {
			t.Fatalf("frequency of %q not preserved", l)
		}
	}
}

func TestAttacksDeterministic(t *testing.T) {
	r, dom := attackData(t, 2000)
	a1, err := SubsetAlteration(r, "Item_Nbr", 0.2, dom, stats.NewSource("det"))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := SubsetAlteration(r, "Item_Nbr", 0.2, dom, stats.NewSource("det"))
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Fatal("same seed produced different attacks")
	}
}
