package attacks

// Additive watermark attack — flagged as open in the paper's Section 6
// ("Additive watermark attacks need to be analyzed and handled"). Mallory
// does not try to remove Alice's mark; he embeds his *own* watermark over
// the stolen data and claims ownership. Both marks then verify on the
// disputed copy, so possession of a detectable watermark alone proves
// nothing. The standard resolution (implemented here) uses asymmetry of
// originals: Alice's pre-publication original carries no trace of
// Mallory's mark, while everything Mallory possesses descends from data
// that already carried Alice's — so detect(Mallory's keys, Alice's
// original) is chance-level while detect(Alice's keys, Mallory's
// "original") is strong.

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/mark"
	"repro/internal/relation"
)

// AdditiveWatermark mounts the attack: embeds Mallory's watermark wm into
// a copy of r under his own options. Returns the re-marked relation and
// the embedding statistics (Mallory pays the same alteration budget an
// honest owner would).
func AdditiveWatermark(r *relation.Relation, wm ecc.Bits, opts mark.Options) (*relation.Relation, mark.EmbedStats, error) {
	out := r.Clone()
	st, err := mark.Embed(out, wm, opts)
	if err != nil {
		return nil, st, fmt.Errorf("attacks: additive watermark: %w", err)
	}
	return out, st, nil
}

// DisputeClaim is one party's position in an ownership dispute.
type DisputeClaim struct {
	// Name identifies the claimant in the verdict.
	Name string
	// WM is the watermark the claimant says they embedded.
	WM ecc.Bits
	// Opts are the claimant's detection options (keys, e, attribute,
	// embedding-time bandwidth).
	Opts mark.Options
	// Original is the relation the claimant presents as their
	// pre-publication original.
	Original *relation.Relation
}

// DisputeVerdict reports the cross-detection matrix and its resolution.
type DisputeVerdict struct {
	// AOnDisputed / BOnDisputed: each party's match fraction on the
	// disputed copy. Under an additive attack both are high — which is
	// why the disputed copy alone cannot resolve ownership.
	AOnDisputed, BOnDisputed float64
	// AOnBOriginal is A's watermark strength in B's claimed original;
	// BOnAOriginal symmetrical. The true owner's mark shows up in the
	// thief's "original"; the thief's mark does not show up in the true
	// owner's.
	AOnBOriginal, BOnAOriginal float64
	// Winner is the resolved owner's name, or "" when the evidence is
	// symmetric (both or neither cross-detections fire).
	Winner string
}

// matchThreshold is the bit-agreement level treated as a positive
// detection in dispute resolution; random keys agree on ≈50% of bits, and
// the probability of exceeding 90% by chance for a 10-bit mark is ≤ (1/2)^10·11.
const matchThreshold = 0.9

// ResolveDispute runs the cross-detection protocol over the disputed copy
// and both claimed originals.
func ResolveDispute(disputed *relation.Relation, a, b DisputeClaim) (DisputeVerdict, error) {
	var v DisputeVerdict
	detect := func(r *relation.Relation, c DisputeClaim) (float64, error) {
		rep, err := mark.Detect(r, len(c.WM), c.Opts)
		if err != nil {
			return 0, fmt.Errorf("attacks: dispute: %s: %w", c.Name, err)
		}
		return rep.MatchFraction(c.WM), nil
	}
	var err error
	if v.AOnDisputed, err = detect(disputed, a); err != nil {
		return v, err
	}
	if v.BOnDisputed, err = detect(disputed, b); err != nil {
		return v, err
	}
	if v.AOnBOriginal, err = detect(b.Original, a); err != nil {
		return v, err
	}
	if v.BOnAOriginal, err = detect(a.Original, b); err != nil {
		return v, err
	}

	aInB := v.AOnBOriginal >= matchThreshold
	bInA := v.BOnAOriginal >= matchThreshold
	switch {
	case aInB && !bInA:
		v.Winner = a.Name
	case bInA && !aInB:
		v.Winner = b.Name
	default:
		v.Winner = "" // symmetric evidence: resolution needs other means
	}
	return v, nil
}
