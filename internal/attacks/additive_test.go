package attacks

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/relation"
)

func additiveSetup(t *testing.T) (orig *relation.Relation, dom *relation.Domain) {
	t.Helper()
	r, d, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 12000, CatalogSize: 300, ZipfS: 1.0, Seed: "additive",
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, d
}

func claimOpts(who string, dom *relation.Domain) mark.Options {
	return mark.Options{
		Attr:   "Item_Nbr",
		K1:     keyhash.NewKey(who + "-k1"),
		K2:     keyhash.NewKey(who + "-k2"),
		E:      40,
		Domain: dom,
	}
}

func TestAdditiveWatermarkBothMarksDetectable(t *testing.T) {
	orig, dom := additiveSetup(t)

	// Alice embeds and publishes.
	aliceWM := ecc.MustParseBits("1011001110")
	aliceOpts := claimOpts("alice", dom)
	published := orig.Clone()
	if _, err := mark.Embed(published, aliceWM, aliceOpts); err != nil {
		t.Fatal(err)
	}

	// Mallory steals and over-marks.
	malloryWM := ecc.MustParseBits("0100110001")
	malloryOpts := claimOpts("mallory", dom)
	disputed, st, err := AdditiveWatermark(published, malloryWM, malloryOpts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Altered == 0 {
		t.Fatal("additive attack embedded nothing")
	}
	// Attack must not mutate its input.
	repIn, err := mark.Detect(published, len(malloryWM), malloryOpts)
	if err != nil {
		t.Fatal(err)
	}
	if repIn.MatchFraction(malloryWM) > 0.9 {
		t.Fatal("attack mutated the input relation")
	}

	// Both marks verify on the disputed copy — the §6 problem.
	repA, err := mark.Detect(disputed, len(aliceWM), aliceOpts)
	if err != nil {
		t.Fatal(err)
	}
	repM, err := mark.Detect(disputed, len(malloryWM), malloryOpts)
	if err != nil {
		t.Fatal(err)
	}
	if repA.MatchFraction(aliceWM) < 0.9 {
		t.Fatalf("Alice's mark destroyed by over-marking: %v", repA.MatchFraction(aliceWM))
	}
	if repM.MatchFraction(malloryWM) < 0.99 {
		t.Fatalf("Mallory's own mark weak: %v", repM.MatchFraction(malloryWM))
	}
}

func TestResolveDisputeFindsTrueOwner(t *testing.T) {
	orig, dom := additiveSetup(t)

	aliceWM := ecc.MustParseBits("1011001110")
	aliceOpts := claimOpts("alice", dom)
	aliceOriginal := orig.Clone() // what Alice can present: pre-publication
	published := orig.Clone()
	if _, err := mark.Embed(published, aliceWM, aliceOpts); err != nil {
		t.Fatal(err)
	}

	malloryWM := ecc.MustParseBits("0100110001")
	malloryOpts := claimOpts("mallory", dom)
	disputed, _, err := AdditiveWatermark(published, malloryWM, malloryOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Mallory's best possible "original" is the published copy he stole
	// (pre-his-own-mark) — it already carries Alice's watermark.
	malloryOriginal := published

	verdict, err := ResolveDispute(disputed,
		DisputeClaim{Name: "alice", WM: aliceWM, Opts: aliceOpts, Original: aliceOriginal},
		DisputeClaim{Name: "mallory", WM: malloryWM, Opts: malloryOpts, Original: malloryOriginal},
	)
	if err != nil {
		t.Fatal(err)
	}
	if verdict.AOnDisputed < 0.9 || verdict.BOnDisputed < 0.9 {
		t.Fatalf("both marks should fire on the disputed copy: %+v", verdict)
	}
	if verdict.AOnBOriginal < 0.9 {
		t.Fatalf("Alice's mark should fire on Mallory's original: %v", verdict.AOnBOriginal)
	}
	if verdict.BOnAOriginal > 0.85 {
		t.Fatalf("Mallory's mark should NOT fire on Alice's original: %v", verdict.BOnAOriginal)
	}
	if verdict.Winner != "alice" {
		t.Fatalf("winner %q, want alice", verdict.Winner)
	}
}

func TestResolveDisputeSymmetricEvidence(t *testing.T) {
	// Two honest parties marking unrelated datasets: neither cross-detects;
	// the protocol must refuse to pick a winner on the unrelated copy.
	origA, dom := additiveSetup(t)
	origB, _, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 12000, CatalogSize: 300, ZipfS: 1.0, Seed: "additive-other",
	})
	if err != nil {
		t.Fatal(err)
	}
	aWM := ecc.MustParseBits("1011001110")
	bWM := ecc.MustParseBits("0100110001")
	aOpts, bOpts := claimOpts("pa", dom), claimOpts("pb", dom)
	markedA := origA.Clone()
	if _, err := mark.Embed(markedA, aWM, aOpts); err != nil {
		t.Fatal(err)
	}
	verdict, err := ResolveDispute(markedA,
		DisputeClaim{Name: "pa", WM: aWM, Opts: aOpts, Original: origA},
		DisputeClaim{Name: "pb", WM: bWM, Opts: bOpts, Original: origB},
	)
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Winner != "" {
		t.Fatalf("winner %q on symmetric evidence, want none", verdict.Winner)
	}
}
