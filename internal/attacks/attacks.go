// Package attacks implements the Section 2.3 adversary model: the six
// attack classes Mallory can mount to defeat the watermark while
// preserving the data's value. Every attack is seeded and deterministic so
// experiments are reproducible, and every attack returns a fresh relation,
// leaving its input untouched.
//
//	A1  HorizontalSubset   random subset selection ("data loss")
//	A2  SubsetAddition     distribution-conforming tuple injection
//	A3  SubsetAlteration   random rewrites of categorical values
//	A4  Resort             re-sorting / shuffling
//	A5  VerticalPartition  attribute projection
//	A6  BijectiveRemap     value-set remapping through a secret bijection
package attacks

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/relation"
	"repro/internal/stats"
)

// HorizontalSubset (A1) keeps a uniformly random fraction keep of the
// tuples, in their original relative order. keep must be in (0, 1];
// at least one tuple is kept.
func HorizontalSubset(r *relation.Relation, keep float64, src *stats.Source) (*relation.Relation, error) {
	if keep <= 0 || keep > 1 {
		return nil, fmt.Errorf("attacks: keep fraction %v outside (0,1]", keep)
	}
	n := r.Len()
	if n == 0 {
		return nil, errors.New("attacks: empty relation")
	}
	k := int(float64(n) * keep)
	if k == 0 {
		k = 1
	}
	rows := src.Sample(n, k)
	// Preserve original order: sampling gives selection order.
	sortInts(rows)
	return r.SelectRows(rows)
}

// SubsetAddition (A2) appends addFrac·N new tuples. Keys are fresh
// integers above the existing maximum (or synthetic strings); every other
// attribute is drawn from the relation's own empirical value distribution,
// so the addition "does not significantly alter the useful properties of
// the initial set" — the attacker's stated constraint.
func SubsetAddition(r *relation.Relation, addFrac float64, src *stats.Source) (*relation.Relation, error) {
	if addFrac < 0 {
		return nil, fmt.Errorf("attacks: negative addition fraction %v", addFrac)
	}
	if r.Len() == 0 {
		return nil, errors.New("attacks: empty relation")
	}
	out := r.Clone()
	nAdd := int(float64(r.Len()) * addFrac)
	if nAdd == 0 {
		return out, nil
	}
	schema := r.Schema()
	keyCol := schema.KeyIndex()

	samplers := make([]*stats.Weighted, schema.Arity())
	for col := 0; col < schema.Arity(); col++ {
		if col == keyCol {
			continue
		}
		h, err := relation.HistogramOf(r, schema.Attr(col).Name)
		if err != nil {
			return nil, err
		}
		labels, freqs := h.FreqVector()
		samplers[col] = stats.NewWeighted(labels, freqs)
	}

	next := maxIntKey(r) + 1
	for added := 0; added < nAdd; {
		t := make(relation.Tuple, schema.Arity())
		for col := range t {
			if col == keyCol {
				t[col] = strconv.FormatInt(next, 10)
				next++
			} else {
				t[col] = samplers[col].Sample(src)
			}
		}
		if err := out.Append(t); err != nil {
			continue // key collision with a non-numeric keyspace; retry
		}
		added++
	}
	return out, nil
}

// SubsetAlteration (A3) rewrites the named categorical attribute of a
// uniformly random fraction frac of the tuples to a uniformly random
// *different* value from the domain — the "random item alterations"
// attack whose success probability Section 4.4 analyses. The domain is
// derived from the data when dom is nil.
func SubsetAlteration(r *relation.Relation, attr string, frac float64, dom *relation.Domain, src *stats.Source) (*relation.Relation, error) {
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("attacks: alteration fraction %v outside [0,1]", frac)
	}
	col, ok := r.Schema().Index(attr)
	if !ok {
		return nil, fmt.Errorf("attacks: unknown attribute %q", attr)
	}
	if r.Len() == 0 {
		return nil, errors.New("attacks: empty relation")
	}
	if dom == nil {
		var err error
		dom, err = relation.DomainOf(r, attr)
		if err != nil {
			return nil, err
		}
	}
	if dom.Size() < 2 {
		return nil, errors.New("attacks: domain too small to alter")
	}
	out := r.Clone()
	n := out.Len()
	for _, row := range src.Sample(n, int(float64(n)*frac)) {
		old := out.Tuple(row)[col]
		nv := dom.Value(src.Intn(dom.Size()))
		for nv == old {
			nv = dom.Value(src.Intn(dom.Size()))
		}
		if err := out.SetValue(row, attr, nv); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Resort (A4) returns a randomly shuffled copy.
func Resort(r *relation.Relation, src *stats.Source) *relation.Relation {
	out := r.Clone()
	out.Shuffle(src)
	return out
}

// SortByAttr (A4 variant) returns a copy sorted by the named attribute —
// an "imposed order" the detector must not depend on.
func SortByAttr(r *relation.Relation, attr string) (*relation.Relation, error) {
	out := r.Clone()
	if err := out.SortBy(attr); err != nil {
		return nil, err
	}
	return out, nil
}

// VerticalPartition (A5) projects onto the kept attributes; the second
// result is the number of tuples lost to projected-key deduplication.
func VerticalPartition(r *relation.Relation, keep ...string) (*relation.Relation, int, error) {
	return r.Project(keep...)
}

// BijectiveRemap (A6) maps every value of attr through a random bijection
// into a fresh namespace, returning the attacked relation and the forward
// mapping (original → remapped) that Mallory would keep secret.
func BijectiveRemap(r *relation.Relation, attr string, src *stats.Source) (*relation.Relation, map[string]string, error) {
	dom, err := relation.DomainOf(r, attr)
	if err != nil {
		return nil, nil, err
	}
	perm := src.Perm(dom.Size())
	forward := make(map[string]string, dom.Size())
	for i, p := range perm {
		forward[dom.Value(i)] = "M_" + strconv.Itoa(p)
	}
	out := r.Clone()
	col, _ := out.Schema().Index(attr)
	for i := 0; i < out.Len(); i++ {
		if err := out.SetValue(i, attr, forward[out.Tuple(i)[col]]); err != nil {
			return nil, nil, err
		}
	}
	return out, forward, nil
}

// maxIntKey returns the largest integer-parsable primary key, or a high
// floor when keys are not integers.
func maxIntKey(r *relation.Relation) int64 {
	var max int64 = 1 << 40 // floor for non-numeric keyspaces
	numeric := false
	for i := 0; i < r.Len(); i++ {
		if v, err := strconv.ParseInt(r.Key(i), 10, 64); err == nil {
			if !numeric || v > max {
				max = v
			}
			numeric = true
		}
	}
	return max
}

func sortInts(a []int) { sort.Ints(a) }
