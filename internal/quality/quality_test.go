package quality

import (
	"errors"
	"strconv"
	"testing"

	"repro/internal/relation"
)

func testRelation(t *testing.T, n int) *relation.Relation {
	t.Helper()
	s := relation.MustSchema([]relation.Attribute{
		{Name: "k", Type: relation.TypeInt},
		{Name: "city", Type: relation.TypeString, Categorical: true},
	}, "k")
	r := relation.New(s)
	cities := []string{"atlanta", "boston", "chicago"}
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{strconv.Itoa(i), cities[i%3]})
	}
	return r
}

func TestAssessorAppliesAndLogs(t *testing.T) {
	r := testRelation(t, 5)
	a := NewAssessor()
	if err := a.Apply(r, 0, "city", "denver"); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Value(0, "city"); v != "denver" {
		t.Fatalf("value %q", v)
	}
	if a.Applied() != 1 || len(a.Log()) != 1 {
		t.Fatalf("applied=%d log=%d", a.Applied(), len(a.Log()))
	}
	got := a.Log()[0]
	if got.Old != "atlanta" || got.New != "denver" || got.Row != 0 {
		t.Fatalf("log entry %+v", got)
	}
}

func TestAssessorNoOpNotLogged(t *testing.T) {
	r := testRelation(t, 3)
	a := NewAssessor()
	if err := a.Apply(r, 0, "city", "atlanta"); err != nil {
		t.Fatal(err)
	}
	if a.Applied() != 0 || len(a.Log()) != 0 {
		t.Fatal("no-op alteration was logged")
	}
}

func TestAssessorUnknownAttr(t *testing.T) {
	r := testRelation(t, 3)
	a := NewAssessor()
	if err := a.Apply(r, 0, "ghost", "x"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestViolationRollsBack(t *testing.T) {
	r := testRelation(t, 6)
	dom := relation.MustDomain([]string{"atlanta", "boston", "chicago"})
	a := NewAssessor(ValueDomain("city", dom))
	err := a.Apply(r, 2, "city", "nowhere")
	var verr *ViolationError
	if !errors.As(err, &verr) {
		t.Fatalf("error %v, want ViolationError", err)
	}
	if v, _ := r.Value(2, "city"); v != "chicago" {
		t.Fatalf("value %q after rollback, want chicago", v)
	}
	if a.Rejected() != 1 || a.Applied() != 0 {
		t.Fatalf("rejected=%d applied=%d", a.Rejected(), a.Applied())
	}
	// In-domain value still passes.
	if err := a.Apply(r, 2, "city", "boston"); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAlterations(t *testing.T) {
	r := testRelation(t, 10)
	a := NewAssessor(MaxAlterations(2))
	if err := a.Apply(r, 0, "city", "x1"); err != nil {
		t.Fatal(err)
	}
	if err := a.Apply(r, 1, "city", "x2"); err != nil {
		t.Fatal(err)
	}
	err := a.Apply(r, 2, "city", "x3")
	var verr *ViolationError
	if !errors.As(err, &verr) {
		t.Fatalf("third alteration error %v, want violation", err)
	}
	if v, _ := r.Value(2, "city"); v != "chicago" {
		t.Fatal("vetoed alteration persisted")
	}
}

func TestMaxAlterationFraction(t *testing.T) {
	r := testRelation(t, 10)
	a := NewAssessor(MaxAlterationFraction(0.2, r.Len())) // 2 allowed
	ok := 0
	for i := 0; i < 5; i++ {
		if err := a.Apply(r, i, "city", "zzz"+strconv.Itoa(i)); err == nil {
			ok++
		}
	}
	if ok != 2 {
		t.Fatalf("committed %d alterations, want 2", ok)
	}
}

func TestFrozenAttribute(t *testing.T) {
	r := testRelation(t, 3)
	a := NewAssessor(FrozenAttribute("k"))
	if err := a.Apply(r, 0, "k", "999"); err == nil {
		t.Fatal("frozen attribute altered")
	}
	if r.Key(0) != "0" {
		t.Fatal("key changed despite veto")
	}
	if err := a.Apply(r, 0, "city", "denver"); err != nil {
		t.Fatalf("unrelated attribute vetoed: %v", err)
	}
}

func TestRollbackToCheckpoint(t *testing.T) {
	r := testRelation(t, 6)
	orig := r.Clone()
	a := NewAssessor()
	if err := a.Apply(r, 0, "city", "v0"); err != nil {
		t.Fatal(err)
	}
	cp := a.Checkpoint()
	if err := a.Apply(r, 1, "city", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := a.Apply(r, 2, "city", "v2"); err != nil {
		t.Fatal(err)
	}
	if err := a.RollbackTo(r, cp); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Value(1, "city"); v != "boston" {
		t.Fatalf("row 1 = %q after rollback", v)
	}
	if v, _ := r.Value(0, "city"); v != "v0" {
		t.Fatalf("checkpointed alteration lost: %q", v)
	}
	if a.Applied() != 1 {
		t.Fatalf("applied=%d after rollback", a.Applied())
	}
	if err := a.UndoAll(r); err != nil {
		t.Fatal(err)
	}
	if !r.Equal(orig) {
		t.Fatal("UndoAll did not restore original relation")
	}
}

func TestRollbackSameRowTwice(t *testing.T) {
	// Two alterations to the same cell must unwind in LIFO order.
	r := testRelation(t, 2)
	a := NewAssessor()
	if err := a.Apply(r, 0, "city", "first"); err != nil {
		t.Fatal(err)
	}
	if err := a.Apply(r, 0, "city", "second"); err != nil {
		t.Fatal(err)
	}
	if err := a.UndoAll(r); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Value(0, "city"); v != "atlanta" {
		t.Fatalf("LIFO undo broken: %q", v)
	}
}

func TestRollbackInvalidCheckpoint(t *testing.T) {
	a := NewAssessor()
	r := testRelation(t, 1)
	if err := a.RollbackTo(r, 5); err == nil {
		t.Fatal("invalid checkpoint accepted")
	}
	if err := a.RollbackTo(r, -1); err == nil {
		t.Fatal("negative checkpoint accepted")
	}
}

func TestFrequencyDrift(t *testing.T) {
	r := testRelation(t, 9) // 3 of each city
	fd, err := FrequencyDrift(r, "city", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAssessor(fd)
	// One move: atlanta 3->2, boston 3->4 ⇒ L1 = 2/9 ≈ 0.222 < 0.3. OK.
	if err := a.Apply(r, 0, "city", "boston"); err != nil {
		t.Fatalf("first move vetoed: %v", err)
	}
	// Second move of the same kind: L1 = 4/9 ≈ 0.444 > 0.3. Veto.
	err = a.Apply(r, 3, "city", "boston")
	var verr *ViolationError
	if !errors.As(err, &verr) {
		t.Fatalf("drift not vetoed: %v", err)
	}
	// A drift-reducing move is allowed: boston back to atlanta.
	if err := a.Apply(r, 0, "city", "atlanta"); err != nil {
		t.Fatalf("drift-reducing move vetoed: %v", err)
	}
}

func TestFrequencyDriftRevertOnRollback(t *testing.T) {
	r := testRelation(t, 9)
	fd, err := FrequencyDrift(r, "city", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAssessor(fd)
	if err := a.Apply(r, 0, "city", "boston"); err != nil {
		t.Fatal(err)
	}
	if err := a.UndoAll(r); err != nil {
		t.Fatal(err)
	}
	// After revert the full budget is available again.
	if err := a.Apply(r, 0, "city", "boston"); err != nil {
		t.Fatalf("budget not restored after rollback: %v", err)
	}
}

func TestFrequencyDriftIgnoresOtherAttrs(t *testing.T) {
	r := testRelation(t, 3)
	fd, err := FrequencyDrift(r, "city", 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAssessor(fd)
	if err := a.Apply(r, 0, "k", "777"); err != nil {
		t.Fatalf("unrelated attribute vetoed: %v", err)
	}
}

func TestFrequencyDriftUnknownAttr(t *testing.T) {
	r := testRelation(t, 3)
	if _, err := FrequencyDrift(r, "ghost", 0.5); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestClassPreserving(t *testing.T) {
	r := testRelation(t, 6)
	// Class = first letter bucket: a-m vs n-z.
	classify := func(t relation.Tuple) string {
		if len(t) < 2 || len(t[1]) == 0 {
			return "?"
		}
		if t[1][0] <= 'm' {
			return "early"
		}
		return "late"
	}
	a := NewAssessor(ClassPreserving("alphabet", classify))
	// atlanta -> boston keeps "early": allowed.
	if err := a.Apply(r, 0, "city", "boston"); err != nil {
		t.Fatalf("class-preserving move vetoed: %v", err)
	}
	// boston -> seattle flips to "late": vetoed.
	err := a.Apply(r, 0, "city", "seattle")
	var verr *ViolationError
	if !errors.As(err, &verr) {
		t.Fatalf("class change not vetoed: %v", err)
	}
	if v, _ := r.Value(0, "city"); v != "boston" {
		t.Fatal("vetoed class change persisted")
	}
}

func TestViolationErrorMessage(t *testing.T) {
	e := &ViolationError{
		Constraint: "c",
		Alt:        Alteration{Row: 3, Attr: "city", Old: "a", New: "b"},
		Reason:     "why",
	}
	msg := e.Error()
	for _, want := range []string{"c", "city", "3", `"a"`, `"b"`, "why"} {
		if !contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
