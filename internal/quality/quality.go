// Package quality implements the on-the-fly data quality assessment of
// Section 4.1: every property of the database that must be preserved is
// written as a constraint on the allowable change; the watermarking
// algorithm re-evaluates the constraints continuously for each alteration,
// and a rollback log allows undo when a watermarking step violates them
// (the paper's Figure 3 "usability metric plugins" + "alteration rollback
// log" architecture, without the JDBC indirection).
package quality

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/stats"
)

// Alteration records one value rewrite performed by a watermarking step.
type Alteration struct {
	// Row is the tuple's index at the time of alteration (embedding never
	// reorders tuples, so indices are stable for the log's lifetime).
	Row int
	// Attr is the attribute rewritten.
	Attr string
	// Old and New are the values before and after.
	Old, New string
}

// Context is what a constraint sees when evaluating an alteration. The
// alteration has already been applied to Relation when Evaluate runs, so
// constraints inspect the resulting state; TupleBefore reconstructs the
// pre-image when needed.
type Context struct {
	// Relation is the data with the alteration applied.
	Relation *relation.Relation
	// Alt is the alteration under evaluation.
	Alt Alteration
	// Applied is the number of alterations committed so far, including
	// this one if it commits.
	Applied int
}

// TupleBefore returns a copy of the altered tuple with the old value
// restored.
func (c Context) TupleBefore() relation.Tuple {
	t := c.Relation.Tuple(c.Alt.Row).Clone()
	if j, ok := c.Relation.Schema().Index(c.Alt.Attr); ok {
		t[j] = c.Alt.Old
	}
	return t
}

// Constraint is a pluggable usability metric. Evaluate returns a non-nil
// error to veto the alteration.
type Constraint interface {
	// Name identifies the constraint in violation reports.
	Name() string
	// Evaluate vetoes the (already-applied) alteration by returning an
	// error. It must not mutate the relation.
	Evaluate(ctx Context) error
}

// Stateful is an optional extension for constraints that maintain
// incremental state (e.g. a running histogram). Commit is called after an
// alteration is accepted; Revert when a logged alteration is undone.
type Stateful interface {
	Commit(ctx Context)
	Revert(ctx Context)
}

// ViolationError reports which constraint vetoed which alteration.
type ViolationError struct {
	Constraint string
	Alt        Alteration
	Reason     string
}

// Error implements the error interface.
func (e *ViolationError) Error() string {
	return fmt.Sprintf("quality: constraint %q rejected alteration of %s[row %d] %q -> %q: %s",
		e.Constraint, e.Alt.Attr, e.Alt.Row, e.Alt.Old, e.Alt.New, e.Reason)
}

// Assessor applies alterations under constraint evaluation with rollback.
// The zero value is unusable; use NewAssessor.
type Assessor struct {
	constraints []Constraint
	log         []Alteration
	applied     int
	rejected    int
}

// NewAssessor builds an assessor over the given constraints. An assessor
// with no constraints accepts everything but still keeps the rollback log.
func NewAssessor(constraints ...Constraint) *Assessor {
	return &Assessor{constraints: constraints}
}

// Apply performs the alteration on r, evaluates every constraint, and
// either commits it to the rollback log or undoes it and returns a
// *ViolationError. Any other error (e.g. unknown attribute) is returned
// without logging.
func (a *Assessor) Apply(r *relation.Relation, row int, attr, newValue string) error {
	old, err := r.Value(row, attr)
	if err != nil {
		return err
	}
	alt := Alteration{Row: row, Attr: attr, Old: old, New: newValue}
	if old == newValue {
		return nil // no change; nothing to evaluate or log
	}
	if err := r.SetValue(row, attr, newValue); err != nil {
		return err
	}
	ctx := Context{Relation: r, Alt: alt, Applied: a.applied + 1}
	for _, c := range a.constraints {
		if verr := c.Evaluate(ctx); verr != nil {
			// Roll back this step.
			if rbErr := r.SetValue(row, attr, old); rbErr != nil {
				return fmt.Errorf("quality: rollback failed: %w", rbErr)
			}
			a.rejected++
			return &ViolationError{Constraint: c.Name(), Alt: alt, Reason: verr.Error()}
		}
	}
	a.log = append(a.log, alt)
	a.applied++
	for _, c := range a.constraints {
		if s, ok := c.(Stateful); ok {
			s.Commit(ctx)
		}
	}
	return nil
}

// Applied returns the number of committed alterations.
func (a *Assessor) Applied() int { return a.applied }

// Rejected returns the number of vetoed alterations.
func (a *Assessor) Rejected() int { return a.rejected }

// Log returns a copy of the rollback log in application order.
func (a *Assessor) Log() []Alteration { return append([]Alteration(nil), a.log...) }

// Checkpoint returns a marker for the current log position, usable with
// RollbackTo.
func (a *Assessor) Checkpoint() int { return len(a.log) }

// RollbackTo undoes all alterations after the checkpoint, most recent
// first, restoring r to its state at Checkpoint time.
func (a *Assessor) RollbackTo(r *relation.Relation, checkpoint int) error {
	if checkpoint < 0 || checkpoint > len(a.log) {
		return fmt.Errorf("quality: invalid checkpoint %d (log size %d)", checkpoint, len(a.log))
	}
	for i := len(a.log) - 1; i >= checkpoint; i-- {
		alt := a.log[i]
		if err := r.SetValue(alt.Row, alt.Attr, alt.Old); err != nil {
			return fmt.Errorf("quality: undo of row %d failed: %w", alt.Row, err)
		}
		ctx := Context{Relation: r, Alt: alt, Applied: a.applied}
		for _, c := range a.constraints {
			if s, ok := c.(Stateful); ok {
				s.Revert(ctx)
			}
		}
		a.applied--
	}
	a.log = a.log[:checkpoint]
	return nil
}

// UndoAll rolls back every logged alteration.
func (a *Assessor) UndoAll(r *relation.Relation) error { return a.RollbackTo(r, 0) }

// ---- Built-in constraints ------------------------------------------------

// maxAlterations bounds the absolute number of committed alterations —
// the paper's "practical approach would be to begin by specifying an upper
// bound on the percentage of allowable data alterations" (Section 4.1,
// footnote 5).
type maxAlterations struct {
	max int
}

// MaxAlterations returns a constraint allowing at most max committed
// alterations.
func MaxAlterations(max int) Constraint { return &maxAlterations{max: max} }

// MaxAlterationFraction returns a constraint allowing alterations to at
// most frac·n tuples.
func MaxAlterationFraction(frac float64, n int) Constraint {
	return &maxAlterations{max: int(frac * float64(n))}
}

func (m *maxAlterations) Name() string { return "max-alterations" }

func (m *maxAlterations) Evaluate(ctx Context) error {
	if ctx.Applied > m.max {
		return fmt.Errorf("alteration budget %d exhausted", m.max)
	}
	return nil
}

// valueDomain restricts an attribute's values to a fixed catalog — the
// semantic-consistency floor for categorical rewrites.
type valueDomain struct {
	attr   string
	domain *relation.Domain
}

// ValueDomain returns a constraint requiring every new value of attr to be
// in the domain.
func ValueDomain(attr string, d *relation.Domain) Constraint {
	return &valueDomain{attr: attr, domain: d}
}

func (v *valueDomain) Name() string { return "value-domain:" + v.attr }

func (v *valueDomain) Evaluate(ctx Context) error {
	if ctx.Alt.Attr != v.attr {
		return nil
	}
	if !v.domain.Contains(ctx.Alt.New) {
		return fmt.Errorf("value %q outside the %d-value domain", ctx.Alt.New, v.domain.Size())
	}
	return nil
}

// frozenAttribute forbids any change to an attribute (e.g. the primary key
// during embedding).
type frozenAttribute struct {
	attr string
}

// FrozenAttribute returns a constraint vetoing all changes to attr.
func FrozenAttribute(attr string) Constraint { return &frozenAttribute{attr: attr} }

func (f *frozenAttribute) Name() string { return "frozen:" + f.attr }

func (f *frozenAttribute) Evaluate(ctx Context) error {
	if ctx.Alt.Attr == f.attr {
		return fmt.Errorf("attribute %q is frozen", f.attr)
	}
	return nil
}

// frequencyDrift bounds the L1 distance between the attribute's current
// occurrence-frequency profile and its profile at construction time. It
// protects the Section 4.2 frequency channel (and aggregate statistics
// consumers) from excessive histogram distortion.
type frequencyDrift struct {
	attr     string
	maxL1    float64
	baseline *stats.Histogram
	current  *stats.Histogram
}

// FrequencyDrift returns a stateful constraint bounding the L1 drift of
// attr's frequency histogram, measured against r's state now.
func FrequencyDrift(r *relation.Relation, attr string, maxL1 float64) (Constraint, error) {
	h, err := relation.HistogramOf(r, attr)
	if err != nil {
		return nil, err
	}
	return &frequencyDrift{attr: attr, maxL1: maxL1, baseline: h, current: h.Clone()}, nil
}

func (f *frequencyDrift) Name() string { return "frequency-drift:" + f.attr }

func (f *frequencyDrift) Evaluate(ctx Context) error {
	if ctx.Alt.Attr != f.attr {
		return nil
	}
	tentative := f.current.Clone()
	tentative.AddN(ctx.Alt.Old, -1)
	tentative.AddN(ctx.Alt.New, 1)
	if d := tentative.L1Distance(f.baseline); d > f.maxL1 {
		return fmt.Errorf("frequency drift %.4f exceeds budget %.4f", d, f.maxL1)
	}
	return nil
}

func (f *frequencyDrift) Commit(ctx Context) {
	if ctx.Alt.Attr != f.attr {
		return
	}
	f.current.AddN(ctx.Alt.Old, -1)
	f.current.AddN(ctx.Alt.New, 1)
}

func (f *frequencyDrift) Revert(ctx Context) {
	if ctx.Alt.Attr != f.attr {
		return
	}
	f.current.AddN(ctx.Alt.New, -1)
	f.current.AddN(ctx.Alt.Old, 1)
}

// classPreserving vetoes alterations that change a tuple's class under a
// user-supplied classifier — the Section 6 future-work idea of encoding
// with "direct awareness of semantic consistency (e.g. classification
// rules)".
type classPreserving struct {
	name     string
	classify func(relation.Tuple) string
}

// ClassPreserving returns a constraint requiring classify(tuple) to be
// unchanged by each alteration.
func ClassPreserving(name string, classify func(relation.Tuple) string) Constraint {
	return &classPreserving{name: name, classify: classify}
}

func (c *classPreserving) Name() string { return "class-preserving:" + c.name }

func (c *classPreserving) Evaluate(ctx Context) error {
	after := c.classify(ctx.Relation.Tuple(ctx.Alt.Row))
	before := c.classify(ctx.TupleBefore())
	if after != before {
		return fmt.Errorf("class changed %q -> %q", before, after)
	}
	return nil
}
