package quality

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func langRelation(t *testing.T) *relation.Relation {
	t.Helper()
	s := relation.MustSchema([]relation.Attribute{
		{Name: "k", Type: relation.TypeInt},
		{Name: "city", Type: relation.TypeString, Categorical: true},
		{Name: "tier", Type: relation.TypeString, Categorical: true},
	}, "k")
	r := relation.New(s)
	cities := []string{"atlanta", "boston", "chicago", "denver"}
	tiers := []string{"gold", "silver"}
	for i := 0; i < 40; i++ {
		r.MustAppend(relation.Tuple{strconv.Itoa(i), cities[i%4], tiers[i%2]})
	}
	return r
}

func mustParse(t *testing.T, src string, r *relation.Relation) Constraint {
	t.Helper()
	c, err := ParseConstraint("test", src, r)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return c
}

func TestLangAlteredFraction(t *testing.T) {
	r := langRelation(t)
	a := NewAssessor(mustParse(t, "altered_fraction() <= 0.05", r)) // 2 of 40
	for i := 0; i < 5; i++ {
		_ = a.Apply(r, i, "city", "elsewhere") // not a current value: no no-ops
	}
	if a.Applied() != 2 {
		t.Fatalf("committed %d alterations, want 2", a.Applied())
	}
}

func TestLangFreqConstraint(t *testing.T) {
	r := langRelation(t) // 10 of each city = freq 0.25
	a := NewAssessor(mustParse(t, "freq('city', 'atlanta') >= 0.2", r))
	// Moving atlanta -> boston drops atlanta toward the 0.2 floor: two
	// moves allowed (0.25 → 0.225 → 0.2), the third violates.
	moved := 0
	for i := 0; i < 40 && moved < 3; i += 4 { // rows ≡ 0 mod 4 are atlanta
		if err := a.Apply(r, i, "city", "boston"); err == nil {
			moved++
		} else {
			break
		}
	}
	if moved != 2 {
		t.Fatalf("moved %d atlanta rows, want 2", moved)
	}
}

func TestLangCountAndDistinct(t *testing.T) {
	r := langRelation(t)
	c := mustParse(t, "count('tier', 'gold') >= 19 and distinct('tier') = 2", r)
	a := NewAssessor(c)
	// First demotion: gold 20 -> 19, allowed.
	if err := a.Apply(r, 0, "tier", "silver"); err != nil {
		t.Fatalf("first demotion vetoed: %v", err)
	}
	// Second demotion: would hit 18 < 19, vetoed.
	var verr *ViolationError
	if err := a.Apply(r, 2, "tier", "silver"); !errors.As(err, &verr) {
		t.Fatalf("second demotion error %v", err)
	}
}

func TestLangFreqDrift(t *testing.T) {
	r := langRelation(t)
	a := NewAssessor(mustParse(t, "freq_drift('city') <= 0.06", r))
	// One move drifts by 2/40 = 0.05 ≤ 0.06; a second hits 0.1.
	if err := a.Apply(r, 0, "city", "boston"); err != nil {
		t.Fatalf("first move vetoed: %v", err)
	}
	var verr *ViolationError
	if err := a.Apply(r, 4, "city", "boston"); !errors.As(err, &verr) {
		t.Fatalf("second move error %v", err)
	}
	// Rollback restores the full drift budget.
	if err := a.UndoAll(r); err != nil {
		t.Fatal(err)
	}
	if err := a.Apply(r, 0, "city", "boston"); err != nil {
		t.Fatalf("budget not restored: %v", err)
	}
}

func TestLangChangedAndStringEquality(t *testing.T) {
	r := langRelation(t)
	// tier may only ever be set to 'silver'; city is unconstrained.
	c := mustParse(t, "not changed('tier') or new() = 'silver'", r)
	a := NewAssessor(c)
	if err := a.Apply(r, 0, "city", "boston"); err != nil {
		t.Fatalf("city change vetoed: %v", err)
	}
	if err := a.Apply(r, 1, "tier", "silver"); err != nil {
		t.Fatalf("tier->silver vetoed: %v", err)
	}
	var verr *ViolationError
	if err := a.Apply(r, 0, "tier", "platinum"); !errors.As(err, &verr) {
		t.Fatalf("tier->platinum error %v", err)
	}
}

func TestLangOldNewComparison(t *testing.T) {
	r := langRelation(t)
	// Forbid "demotions": old() = 'gold' vetoes.
	c := mustParse(t, "not (changed('tier') and old() = 'gold')", r)
	a := NewAssessor(c)
	// Row 1 is silver: promoting is fine.
	if err := a.Apply(r, 1, "tier", "gold"); err != nil {
		t.Fatalf("promotion vetoed: %v", err)
	}
	// Row 0 is gold: any change vetoed.
	var verr *ViolationError
	if err := a.Apply(r, 0, "tier", "silver"); !errors.As(err, &verr) {
		t.Fatalf("demotion error %v", err)
	}
}

func TestLangArithmeticAndPrecedence(t *testing.T) {
	r := langRelation(t)
	cases := []struct {
		src  string
		pass bool
	}{
		{"1 + 2 * 3 = 7", true},
		{"(1 + 2) * 3 = 9", true},
		{"10 / 4 = 2.5", true},
		{"-3 + 5 > 0", true},
		{"2 < 1 or 3 > 2", true},
		{"2 < 1 and 3 > 2", false},
		{"not 2 < 1", true},
		{"rows() = 40", true},
		{"rows() * 2 = 80", true},
		{"1 = 1 and 2 = 2 and 3 = 3", true},
		{"1 != 2", true},
		{"1 <> 1", false},
		{"'a' = 'a'", true},
		{"'a' != 'b'", true},
		{"'a' = 1", false}, // cross-type equality is false
	}
	for _, tc := range cases {
		c := mustParse(t, tc.src, r)
		a := NewAssessor(c)
		err := a.Apply(r.Clone(), 0, "city", "boston")
		var verr *ViolationError
		got := !errors.As(err, &verr) && err == nil
		if got != tc.pass {
			t.Errorf("%q: pass=%v, want %v (err=%v)", tc.src, got, tc.pass, err)
		}
	}
}

func TestLangParseErrors(t *testing.T) {
	r := langRelation(t)
	bad := []string{
		"",
		"1 +",
		"(1 = 1",
		"1 = 1)",
		"nosuchfunc() = 1",
		"count('city') = 1",           // wrong arity
		"count('ghost', 'x') = 1",     // unknown attribute
		"freq('city', 'a') = 'a' = 1", // chained comparison
		"'unterminated",
		"1 === 2",
		"1 & 2",
		"changed('city')! = 1",
		"freq_drift('city')",    // number where boolean needed
		"'str' + 1 = 2",         // string arithmetic
		"1 and 2",               // non-boolean operands
		"freq(rows(), 'x') > 0", // non-literal attribute argument
	}
	for _, src := range bad {
		if _, err := ParseConstraint("bad", src, r); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestLangCaseInsensitiveKeywords(t *testing.T) {
	r := langRelation(t)
	c := mustParse(t, "1 = 1 AND NOT 2 = 3 OR 1 = 2", r)
	a := NewAssessor(c)
	if err := a.Apply(r, 0, "city", "boston"); err != nil {
		t.Fatalf("uppercase keywords failed: %v", err)
	}
}

func TestLangHistogramConsistencyAfterChurn(t *testing.T) {
	// Property: after arbitrary committed/vetoed/rolled-back alterations,
	// the constraint's incremental histogram matches a fresh recount.
	r := langRelation(t)
	c := mustParse(t, "count('city', 'atlanta') >= 5", r).(*exprConstraint)
	a := NewAssessor(c)
	f := func(rows []uint8, undo bool) bool {
		cp := a.Checkpoint()
		for _, rw := range rows {
			row := int(rw) % r.Len()
			_ = a.Apply(r, row, "city", []string{"atlanta", "boston", "chicago"}[int(rw)%3])
		}
		if undo {
			if err := a.RollbackTo(r, cp); err != nil {
				return false
			}
		}
		fresh, err := relation.HistogramOf(r, "city")
		if err != nil {
			return false
		}
		for _, label := range fresh.Labels() {
			if fresh.Count(label) != c.hists["city"].Count(label) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLangIntegrationWithEmbedding(t *testing.T) {
	// The paper's Section 6 vision: express the embedding budget in the
	// constraint language and let the assessor enforce it during marking.
	r := langRelation(t)
	c := mustParse(t, "altered_fraction() <= 0.10 and distinct('city') >= 4", r)
	a := NewAssessor(c)
	for i := 0; i < r.Len(); i++ {
		_ = a.Apply(r, i, "city", "chicago") // no-ops on existing chicago rows
	}
	if a.Applied() != 4 { // 10% of 40
		t.Fatalf("committed %d, want 4", a.Applied())
	}
}

func TestLangViolationMessageNamesConstraint(t *testing.T) {
	r := langRelation(t)
	c, err := ParseConstraint("my-budget", "altered() <= 0", r)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAssessor(c)
	err = a.Apply(r, 0, "city", "boston")
	var verr *ViolationError
	if !errors.As(err, &verr) {
		t.Fatalf("error %v", err)
	}
	if !strings.Contains(verr.Error(), "my-budget") {
		t.Fatalf("message %q lacks constraint name", verr.Error())
	}
}
