package quality

// This file implements the constraint expression language sketched as
// future work in the paper's Section 6: "to define a generic language
// (possibly subset of SQL) able to naturally express such constraints and
// their propagation at embedding time". Constraints are boolean
// expressions over the relation's state and the alteration stream,
// compiled once and re-evaluated per alteration like any other Constraint:
//
//	altered_fraction() <= 0.02
//	freq('city', 'chicago') >= 0.10 and freq_drift('city') <= 0.05
//	not changed('zip') or count('zip', new()) > 0
//
// Grammar (an SQL-WHERE-like subset):
//
//	expr    := and_expr { OR and_expr }
//	and_expr:= unary   { AND unary }
//	unary   := NOT unary | comparison
//	cmp     := sum [ (<=|<|>=|>|=|==|!=|<>) sum ]
//	sum     := term { (+|-) term }
//	term    := factor { (*|/) factor }
//	factor  := NUMBER | STRING | func | ( expr )
//	func    := IDENT ( [arg {, arg}] )
//
// Built-in functions (all numeric unless noted):
//
//	rows()                    relation size N
//	altered()                 alterations committed so far (incl. current)
//	altered_fraction()        altered() / rows()
//	count(attr, value)        occurrences of value in attr (incremental)
//	freq(attr, value)         count/N
//	distinct(attr)            number of distinct values in attr
//	freq_drift(attr)          L1 distance of attr's histogram from its
//	                          state at compile time
//	changed(attr)             1 when the current alteration touches attr
//	old(), new()              the alteration's old/new value (string)
//
// String equality works through = / != between string-valued expressions;
// numbers and strings never compare equal.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relation"
	"repro/internal/stats"
)

// ParseConstraint compiles src into a Constraint named name, bound to r's
// current state (baselines for freq_drift are captured now). The returned
// constraint is stateful: it maintains per-attribute histograms
// incrementally as alterations commit and revert.
func ParseConstraint(name, src string, r *relation.Relation) (Constraint, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, fmt.Errorf("quality: %q: %w", name, err)
	}
	p := &parser{toks: toks}
	ast, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("quality: %q: %w", name, err)
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("quality: %q: trailing input at %q", name, p.peek().text)
	}
	ec := &exprConstraint{name: name, ast: ast, hists: map[string]*stats.Histogram{}}
	// Bind histograms for every attribute the expression touches.
	for _, attr := range ast.attrs(nil) {
		if _, ok := r.Schema().Index(attr); !ok {
			return nil, fmt.Errorf("quality: %q: unknown attribute %q", name, attr)
		}
		h, err := relation.HistogramOf(r, attr)
		if err != nil {
			return nil, err
		}
		ec.hists[attr] = h.Clone()
		if ec.baselines == nil {
			ec.baselines = map[string]*stats.Histogram{}
		}
		ec.baselines[attr] = h
	}
	// Probe-evaluate against a synthetic context to surface type errors
	// (e.g. "1 + freq(...)" vs "old() + 1") at compile time.
	probe := Context{Relation: r, Applied: 0, Alt: Alteration{Attr: probeAttr(ast), Old: "", New: ""}}
	v, err := ast.eval(&evalEnv{ctx: probe, c: ec})
	if err != nil {
		return nil, fmt.Errorf("quality: %q: %w", name, err)
	}
	if _, ok := v.(bool); !ok {
		return nil, fmt.Errorf("quality: %q: expression is %s-valued, need boolean", name, typeName(v))
	}
	return ec, nil
}

// probeAttr picks any referenced attribute so changed() probes type-check.
func probeAttr(ast node) string {
	attrs := ast.attrs(nil)
	if len(attrs) > 0 {
		return attrs[0]
	}
	return ""
}

// exprConstraint adapts a compiled expression to Constraint + Stateful.
type exprConstraint struct {
	name      string
	ast       node
	hists     map[string]*stats.Histogram // live, maintained incrementally
	baselines map[string]*stats.Histogram // compile-time snapshots
}

func (c *exprConstraint) Name() string { return c.name }

func (c *exprConstraint) Evaluate(ctx Context) error {
	// Evaluate against the would-be-committed state: apply the delta to
	// the touched histogram, evaluate, undo the delta (Commit re-applies
	// it permanently on acceptance).
	if h, ok := c.hists[ctx.Alt.Attr]; ok {
		h.AddN(ctx.Alt.Old, -1)
		h.AddN(ctx.Alt.New, 1)
		defer func() {
			h.AddN(ctx.Alt.New, -1)
			h.AddN(ctx.Alt.Old, 1)
		}()
	}
	v, err := c.ast.eval(&evalEnv{ctx: ctx, c: c})
	if err != nil {
		return err
	}
	b, ok := v.(bool)
	if !ok {
		return fmt.Errorf("constraint expression is %s-valued, need boolean", typeName(v))
	}
	if !b {
		return errors.New("expression evaluated to false")
	}
	return nil
}

func (c *exprConstraint) Commit(ctx Context) {
	if h, ok := c.hists[ctx.Alt.Attr]; ok {
		h.AddN(ctx.Alt.Old, -1)
		h.AddN(ctx.Alt.New, 1)
	}
}

func (c *exprConstraint) Revert(ctx Context) {
	if h, ok := c.hists[ctx.Alt.Attr]; ok {
		h.AddN(ctx.Alt.New, -1)
		h.AddN(ctx.Alt.Old, 1)
	}
}

// ---- lexer ----------------------------------------------------------------

type tokKind int

const (
	tokEOF tokKind = iota
	tokNumber
	tokString
	tokIdent
	tokOp     // < <= > >= = == != <> + - * /
	tokLParen // (
	tokRParen // )
	tokComma
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			i++
		case ch == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case ch == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case ch == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case ch == '\'' || ch == '"':
			quote := ch
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, src[i+1 : j], i})
			i = j + 1
		case ch >= '0' && ch <= '9' || ch == '.':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' ||
				src[j] == 'E' || ((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			text := src[i:j]
			if _, err := strconv.ParseFloat(text, 64); err != nil {
				return nil, fmt.Errorf("bad number %q at offset %d", text, i)
			}
			toks = append(toks, token{tokNumber, text, i})
			i = j
		case isIdentStart(ch):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		case strings.ContainsRune("<>=!+-*/", rune(ch)):
			j := i + 1
			if j < len(src) && (src[j] == '=' || (ch == '<' && src[j] == '>')) {
				j++
			}
			op := src[i:j]
			switch op {
			case "<", "<=", ">", ">=", "=", "==", "!=", "<>", "+", "-", "*", "/":
				toks = append(toks, token{tokOp, op, i})
			default:
				return nil, fmt.Errorf("bad operator %q at offset %d", op, i)
			}
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q at offset %d", ch, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// ---- parser ---------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("expected %s at offset %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

func (p *parser) parseExpr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &boolNode{op: "or", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "and") {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &boolNode{op: "and", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (node, error) {
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "not") {
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &notNode{inner: inner}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (node, error) {
	left, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokOp {
		switch p.peek().text {
		case "<", "<=", ">", ">=", "=", "==", "!=", "<>":
			op := p.next().text
			right, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			return &cmpNode{op: op, left: left, right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseSum() (node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "+" || p.peek().text == "-") {
		op := p.next().text
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &arithNode{op: op, left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (node, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "*" || p.peek().text == "/") {
		op := p.next().text
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &arithNode{op: op, left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseFactor() (node, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		v, _ := strconv.ParseFloat(t.text, 64)
		return &numNode{v: v}, nil
	case tokString:
		p.next()
		return &strNode{v: t.text}, nil
	case tokLParen:
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	case tokOp:
		if t.text == "-" { // unary minus
			p.next()
			inner, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			return &arithNode{op: "-", left: &numNode{v: 0}, right: inner}, nil
		}
	case tokIdent:
		return p.parseCall()
	}
	return nil, fmt.Errorf("unexpected %q at offset %d", t.text, t.pos)
}

var knownFuncs = map[string]struct{ minArgs, maxArgs int }{
	"rows":             {0, 0},
	"altered":          {0, 0},
	"altered_fraction": {0, 0},
	"count":            {2, 2},
	"freq":             {2, 2},
	"distinct":         {1, 1},
	"freq_drift":       {1, 1},
	"changed":          {1, 1},
	"old":              {0, 0},
	"new":              {0, 0},
}

func (p *parser) parseCall() (node, error) {
	nameTok := p.next()
	name := strings.ToLower(nameTok.text)
	spec, ok := knownFuncs[name]
	if !ok {
		return nil, fmt.Errorf("unknown function %q at offset %d", nameTok.text, nameTok.pos)
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	var args []node
	if p.peek().kind != tokRParen {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	if len(args) < spec.minArgs || len(args) > spec.maxArgs {
		return nil, fmt.Errorf("%s() takes %d argument(s), got %d", name, spec.minArgs, len(args))
	}
	return &callNode{name: name, args: args}, nil
}

// ---- AST + evaluation ------------------------------------------------------

// value is float64, string, or bool.
type value interface{}

func typeName(v value) string {
	switch v.(type) {
	case float64:
		return "number"
	case string:
		return "string"
	case bool:
		return "boolean"
	default:
		return "unknown"
	}
}

type evalEnv struct {
	ctx Context
	c   *exprConstraint
}

// node is an AST node. attrs accumulates the attribute names the
// expression references, so the constraint can bind histograms.
type node interface {
	eval(env *evalEnv) (value, error)
	attrs(acc []string) []string
}

type numNode struct{ v float64 }

func (n *numNode) eval(*evalEnv) (value, error) { return n.v, nil }
func (n *numNode) attrs(acc []string) []string  { return acc }

type strNode struct{ v string }

func (n *strNode) eval(*evalEnv) (value, error) { return n.v, nil }
func (n *strNode) attrs(acc []string) []string  { return acc }

type boolNode struct {
	op          string // and | or
	left, right node
}

func (n *boolNode) eval(env *evalEnv) (value, error) {
	l, err := n.left.eval(env)
	if err != nil {
		return nil, err
	}
	lb, ok := l.(bool)
	if !ok {
		return nil, fmt.Errorf("%s: left operand is %s, need boolean", n.op, typeName(l))
	}
	// Short-circuit.
	if n.op == "and" && !lb {
		return false, nil
	}
	if n.op == "or" && lb {
		return true, nil
	}
	r, err := n.right.eval(env)
	if err != nil {
		return nil, err
	}
	rb, ok := r.(bool)
	if !ok {
		return nil, fmt.Errorf("%s: right operand is %s, need boolean", n.op, typeName(r))
	}
	return rb, nil
}

func (n *boolNode) attrs(acc []string) []string {
	return n.right.attrs(n.left.attrs(acc))
}

type notNode struct{ inner node }

func (n *notNode) eval(env *evalEnv) (value, error) {
	v, err := n.inner.eval(env)
	if err != nil {
		return nil, err
	}
	b, ok := v.(bool)
	if !ok {
		return nil, fmt.Errorf("not: operand is %s, need boolean", typeName(v))
	}
	return !b, nil
}

func (n *notNode) attrs(acc []string) []string { return n.inner.attrs(acc) }

type cmpNode struct {
	op          string
	left, right node
}

func (n *cmpNode) eval(env *evalEnv) (value, error) {
	l, err := n.left.eval(env)
	if err != nil {
		return nil, err
	}
	r, err := n.right.eval(env)
	if err != nil {
		return nil, err
	}
	// String comparison: only equality operators.
	ls, lIsStr := l.(string)
	rs, rIsStr := r.(string)
	if lIsStr || rIsStr {
		switch n.op {
		case "=", "==":
			return lIsStr && rIsStr && ls == rs, nil
		case "!=", "<>":
			return !(lIsStr && rIsStr && ls == rs), nil
		default:
			return nil, fmt.Errorf("operator %q not defined on strings", n.op)
		}
	}
	lf, lok := l.(float64)
	rf, rok := r.(float64)
	if !lok || !rok {
		return nil, fmt.Errorf("comparison needs numbers or strings, got %s %s %s",
			typeName(l), n.op, typeName(r))
	}
	switch n.op {
	case "<":
		return lf < rf, nil
	case "<=":
		return lf <= rf, nil
	case ">":
		return lf > rf, nil
	case ">=":
		return lf >= rf, nil
	case "=", "==":
		return lf == rf, nil
	case "!=", "<>":
		return lf != rf, nil
	}
	return nil, fmt.Errorf("unknown comparison %q", n.op)
}

func (n *cmpNode) attrs(acc []string) []string {
	return n.right.attrs(n.left.attrs(acc))
}

type arithNode struct {
	op          string
	left, right node
}

func (n *arithNode) eval(env *evalEnv) (value, error) {
	l, err := n.left.eval(env)
	if err != nil {
		return nil, err
	}
	r, err := n.right.eval(env)
	if err != nil {
		return nil, err
	}
	lf, lok := l.(float64)
	rf, rok := r.(float64)
	if !lok || !rok {
		return nil, fmt.Errorf("arithmetic needs numbers, got %s %s %s",
			typeName(l), n.op, typeName(r))
	}
	switch n.op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, errors.New("division by zero")
		}
		return lf / rf, nil
	}
	return nil, fmt.Errorf("unknown operator %q", n.op)
}

func (n *arithNode) attrs(acc []string) []string {
	return n.right.attrs(n.left.attrs(acc))
}

type callNode struct {
	name string
	args []node
}

func (n *callNode) eval(env *evalEnv) (value, error) {
	argStr := func(i int) (string, error) {
		v, err := n.args[i].eval(env)
		if err != nil {
			return "", err
		}
		s, ok := v.(string)
		if !ok {
			return "", fmt.Errorf("%s(): argument %d is %s, need string", n.name, i+1, typeName(v))
		}
		return s, nil
	}
	hist := func(attr string) (*stats.Histogram, error) {
		h, ok := env.c.hists[attr]
		if !ok {
			return nil, fmt.Errorf("%s(): attribute %q not bound (must appear as a literal)", n.name, attr)
		}
		return h, nil
	}
	switch n.name {
	case "rows":
		return float64(env.ctx.Relation.Len()), nil
	case "altered":
		return float64(env.ctx.Applied), nil
	case "altered_fraction":
		nRows := env.ctx.Relation.Len()
		if nRows == 0 {
			return 0.0, nil
		}
		return float64(env.ctx.Applied) / float64(nRows), nil
	case "count", "freq":
		attr, err := argStr(0)
		if err != nil {
			return nil, err
		}
		val, err := argStr(1)
		if err != nil {
			return nil, err
		}
		h, err := hist(attr)
		if err != nil {
			return nil, err
		}
		if n.name == "count" {
			return float64(h.Count(val)), nil
		}
		return h.Freq(val), nil
	case "distinct":
		attr, err := argStr(0)
		if err != nil {
			return nil, err
		}
		h, err := hist(attr)
		if err != nil {
			return nil, err
		}
		return float64(h.Distinct()), nil
	case "freq_drift":
		attr, err := argStr(0)
		if err != nil {
			return nil, err
		}
		h, err := hist(attr)
		if err != nil {
			return nil, err
		}
		base, ok := env.c.baselines[attr]
		if !ok {
			return nil, fmt.Errorf("freq_drift(): no baseline for %q", attr)
		}
		return h.L1Distance(base), nil
	case "changed":
		attr, err := argStr(0)
		if err != nil {
			return nil, err
		}
		return env.ctx.Alt.Attr == attr, nil
	case "old":
		return env.ctx.Alt.Old, nil
	case "new":
		return env.ctx.Alt.New, nil
	}
	return nil, fmt.Errorf("unknown function %q", n.name)
}

// attrs extracts literal attribute names from the histogram-touching
// functions so ParseConstraint can bind them at compile time.
func (n *callNode) attrs(acc []string) []string {
	attrArg := -1
	switch n.name {
	case "count", "freq", "distinct", "freq_drift", "changed":
		attrArg = 0
	}
	if attrArg >= 0 && attrArg < len(n.args) {
		if s, ok := n.args[attrArg].(*strNode); ok {
			found := false
			for _, a := range acc {
				if a == s.v {
					found = true
					break
				}
			}
			if !found {
				acc = append(acc, s.v)
			}
		}
	}
	for _, a := range n.args {
		acc = a.attrs(acc)
	}
	return acc
}
