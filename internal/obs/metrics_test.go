package obs

import (
	"context"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGoldenExposition pins the exact Prometheus text rendering:
// family ordering, HELP/TYPE lines, series ordering, histogram
// cumulative buckets with +Inf/_sum/_count, and label escaping.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "Plain counter.").Add(7)
	v := r.CounterVec("a_total", "Labeled counter.", "worker")
	v.With("w2").Add(2)
	v.With(`esc"quote\slash` + "\nline").Inc()
	r.Gauge("c_gauge", "A gauge.").Set(-3)
	h := r.Histogram("d_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)
	r.Sampled("e_info", "Sampled gauge.", TypeGauge, func(emit Emit) {
		emit(1.5, "z")
		emit(0.25, "a")
	}, "shard")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_total Labeled counter.
# TYPE a_total counter
a_total{worker="esc\"quote\\slash\nline"} 1
a_total{worker="w2"} 2
# HELP b_total Plain counter.
# TYPE b_total counter
b_total 7
# HELP c_gauge A gauge.
# TYPE c_gauge gauge
c_gauge -3
# HELP d_seconds A histogram.
# TYPE d_seconds histogram
d_seconds_bucket{le="0.1"} 1
d_seconds_bucket{le="1"} 3
d_seconds_bucket{le="+Inf"} 4
d_seconds_sum 6.05
d_seconds_count 4
# HELP e_info Sampled gauge.
# TYPE e_info gauge
e_info{shard="a"} 0.25
e_info{shard="z"} 1.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+]+|[+-]Inf|NaN)$`)
)

// TestExpositionParsesLineByLine walks a busy registry's output and
// checks every line is a well-formed HELP, TYPE, or sample line, that
// HELP immediately precedes TYPE, and that every sample belongs to the
// most recently declared family.
func TestExpositionParsesLineByLine(t *testing.T) {
	r := NewRegistry()
	NewHTTPMetrics(r).Observe("GET /v2/jobs", "GET", 200, 12*time.Millisecond, 512)
	r.CounterVec("wm_jobs_total", "Jobs.", "kind", "state").With("verify_batch", "done").Inc()
	r.Histogram("wm_jobs_queue_wait_seconds", "Queue wait.", WideBuckets).Observe(0.002)
	r.Sampled("wm_uptime_seconds", "Uptime.", TypeGauge, func(emit Emit) { emit(12.75) })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("suspiciously short output:\n%s", b.String())
	}
	var curFam string
	var lastHelp string
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			m := helpRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed HELP: %q", i+1, line)
			}
			lastHelp = m[1]
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			if m[1] != lastHelp {
				t.Fatalf("line %d: TYPE %s not preceded by its HELP (last HELP %s)", i+1, m[1], lastHelp)
			}
			if curFam != "" && m[1] <= curFam {
				t.Fatalf("line %d: family %s not sorted after %s", i+1, m[1], curFam)
			}
			curFam = m[1]
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", i+1, line)
			}
			name := m[1]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if name != curFam && base != curFam {
				t.Fatalf("line %d: sample %s outside its family block (current %s)", i+1, name, curFam)
			}
			if _, err := strconv.ParseFloat(m[3], 64); err != nil && m[3] != "+Inf" && m[3] != "-Inf" && m[3] != "NaN" {
				t.Fatalf("line %d: bad value %q", i+1, m[3])
			}
		}
	}
}

// TestHistogramBucketsCumulative checks bucket counts are cumulative
// and bounded by _count even under concurrent observation.
func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "x", []float64{0.01, 0.1, 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%200) / 100)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d, want 8000", h.Count())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "lat_bucket") {
			continue
		}
		n, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative: %d after %d in\n%s", n, prev, b.String())
		}
		prev = n
	}
	if prev != 8000 {
		t.Fatalf("+Inf bucket %d, want 8000", prev)
	}
}

// TestConcurrentScrapeAndMutate hammers every metric kind while
// scraping — run under -race this is the registry's data-race proof.
func TestConcurrentScrapeAndMutate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	cv := r.CounterVec("cv_total", "cv", "k")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", DefBuckets)
	r.Sampled("s", "s", TypeGauge, func(emit Emit) { emit(float64(c.Value())) })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				cv.With(strconv.Itoa(j % 5)).Add(2)
				g.Add(int64(i - 2))
				h.Observe(float64(j%100) / 1000)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				if len(r.Snapshot()) == 0 {
					t.Error("empty snapshot")
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("bad request IDs: %q %q", a, b)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestID(ctx); got != a {
		t.Fatalf("round-trip: got %q want %q", got, a)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("empty ctx: got %q", got)
	}
}

func TestStatusClass(t *testing.T) {
	for code, want := range map[int]string{200: "2xx", 204: "2xx", 301: "3xx", 404: "4xx", 500: "5xx", 99: "other"} {
		if got := StatusClass(code); got != want {
			t.Errorf("StatusClass(%d) = %q, want %q", code, got, want)
		}
	}
}
