// Package obs is the repo's dependency-free telemetry layer: an atomic
// metrics registry (counters, gauges, fixed-bucket histograms, and
// scrape-time sampled families) rendered in Prometheus text exposition
// format 0.0.4, plus request-ID correlation helpers and log/slog
// constructors shared by the server, cluster, and CLI.
//
// The package deliberately imports only the standard library — go.mod
// stays third-party-free, and CI enforces the constraint with a grep
// gate over `go list -deps`.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType is the Prometheus metric type advertised on the # TYPE line.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// DefBuckets mirror the Prometheus client default latency buckets —
// suitable for HTTP request durations.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// WideBuckets cover long-running work — job queue waits, job run times,
// and cluster shard round-trips — out to half an hour.
var WideBuckets = []float64{0.005, 0.025, 0.1, 0.5, 1, 2.5, 10, 30, 60, 300, 1800}

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; handles obtained from a Registry are also rendered at scrape.
type Counter struct{ v atomic.Uint64 }

func (c *Counter) Inc()          { c.v.Add(1) }
func (c *Counter) Add(n uint64)  { c.v.Add(n) }
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an int64 that can go up and down.
type Gauge struct{ v atomic.Int64 }

func (g *Gauge) Set(n int64)  { g.v.Store(n) }
func (g *Gauge) Add(n int64)  { g.v.Add(n) }
func (g *Gauge) Inc()         { g.v.Add(1) }
func (g *Gauge) Dec()         { g.v.Add(-1) }
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Observations index into
// per-bucket atomic counters; the float64 sum is maintained with a CAS
// loop so Observe stays lock-free.
type Histogram struct {
	bounds []float64 // ascending upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
}

func (h *Histogram) Observe(v float64) {
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Emit reports one sampled series value; labelValues must match the
// sampled family's label names positionally.
type Emit func(value float64, labelValues ...string)

// point is anything a family can hold per label-set.
type point interface{}

// family is one metric name: HELP, TYPE, label names, and either a map
// of concrete series or a scrape-time sample function.
type family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64

	mu     sync.RWMutex
	series map[string]point
	keys   map[string][]string // series key -> label values

	sample func(emit Emit) // sampled families only; series == nil
}

// Registry holds metric families and renders them in Prometheus text
// format. All mutation paths (Inc/Add/Set/Observe) are atomic; family
// creation and label-set lookup take short registry/family locks.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

func (r *Registry) family(name, help string, typ MetricType, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic("obs: metric " + name + " re-registered with a different shape")
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ, buckets: buckets, labels: labels,
		series: make(map[string]point), keys: make(map[string][]string),
	}
	r.fams[name] = f
	return f
}

// seriesKey joins label values with a separator that cannot collide
// with practical label content (0xFF is invalid UTF-8).
func seriesKey(labelValues []string) string { return strings.Join(labelValues, "\xff") }

func (f *family) get(labelValues []string, mk func() point) point {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := seriesKey(labelValues)
	f.mu.RLock()
	p, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return p
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if p, ok := f.series[key]; ok {
		return p
	}
	p = mk()
	f.series[key] = p
	f.keys[key] = append([]string(nil), labelValues...)
	return p
}

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, TypeCounter, nil, nil)
	return f.get(nil, func() point { return new(Counter) }).(*Counter)
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, TypeGauge, nil, nil)
	return f.get(nil, func() point { return new(Gauge) }).(*Gauge)
}

// Histogram registers (or returns the existing) unlabeled histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, TypeHistogram, buckets, nil)
	return f.get(nil, func() point { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec is a counter family with labels; With returns the series
// handle for one label-value set, creating it on first use.
type CounterVec struct{ f *family }

func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, TypeCounter, nil, labels)}
}

func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues, func() point { return new(Counter) }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, TypeGauge, nil, labels)}
}

func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.get(labelValues, func() point { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, TypeHistogram, buckets, labels)}
}

func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(labelValues, func() point { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Sampled registers a family whose series are produced at scrape time
// by collect — for values that already live elsewhere (job-manager
// stats, cluster membership ages, process-wide pipeline counters)
// so /metrics and /healthz read the same source and cannot drift.
// collect must only emit; it must not call back into the Registry.
func (r *Registry) Sampled(name, help string, typ MetricType, collect func(emit Emit), labels ...string) {
	f := r.family(name, help, typ, nil, labels)
	f.sample = collect
}

// sampledValue is one collected (labels, value) pair.
type sampledValue struct {
	labelValues []string
	value       float64
}

func (f *family) collect() []sampledValue {
	var out []sampledValue
	f.sample(func(v float64, lvs ...string) {
		if len(lvs) != len(f.labels) {
			panic(fmt.Sprintf("obs: sampled metric %s wants %d label values, got %d", f.name, len(f.labels), len(lvs)))
		}
		out = append(out, sampledValue{labelValues: append([]string(nil), lvs...), value: v})
	})
	sort.Slice(out, func(i, j int) bool {
		return seriesKey(out[i].labelValues) < seriesKey(out[j].labelValues)
	})
	return out
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"} (or "" without labels); extra, if
// non-empty, is appended as a pre-escaped pair (used for le="...").
func labelString(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in text exposition format 0.0.4:
// families sorted by name, series sorted by label values, each family
// preceded by its # HELP and # TYPE lines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ)
		if f.sample != nil {
			for _, sv := range f.collect() {
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, sv.labelValues, ""), formatFloat(sv.value))
			}
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
			continue
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		type row struct {
			lvs []string
			p   point
		}
		rows := make([]row, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, row{f.keys[k], f.series[k]})
		}
		f.mu.RUnlock()
		for _, rw := range rows {
			switch p := rw.p.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, rw.lvs, ""), strconv.FormatUint(p.Value(), 10))
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, rw.lvs, ""), strconv.FormatInt(p.Value(), 10))
			case *Histogram:
				var cum uint64
				for i, ub := range p.bounds {
					cum += p.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %s\n", f.name,
						labelString(f.labels, rw.lvs, `le="`+formatFloat(ub)+`"`),
						strconv.FormatUint(cum, 10))
				}
				count := p.Count()
				fmt.Fprintf(&b, "%s_bucket%s %s\n", f.name,
					labelString(f.labels, rw.lvs, `le="+Inf"`), strconv.FormatUint(count, 10))
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(f.labels, rw.lvs, ""), formatFloat(p.Sum()))
				fmt.Fprintf(&b, "%s_count%s %s\n", f.name, labelString(f.labels, rw.lvs, ""), strconv.FormatUint(count, 10))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot flattens the registry into name{labels} -> value. Unlabeled
// series use the bare family name; histograms contribute _count and
// _sum entries. /healthz is built from this so it cannot drift from
// /metrics.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	out := make(map[string]float64)
	for _, f := range fams {
		if f.sample != nil {
			for _, sv := range f.collect() {
				out[f.name+labelString(f.labels, sv.labelValues, "")] = sv.value
			}
			continue
		}
		f.mu.RLock()
		type row struct {
			lvs []string
			p   point
		}
		rows := make([]row, 0, len(f.series))
		for k, p := range f.series {
			rows = append(rows, row{f.keys[k], p})
		}
		f.mu.RUnlock()
		for _, rw := range rows {
			ls := labelString(f.labels, rw.lvs, "")
			switch p := rw.p.(type) {
			case *Counter:
				out[f.name+ls] = float64(p.Value())
			case *Gauge:
				out[f.name+ls] = float64(p.Value())
			case *Histogram:
				out[f.name+"_count"+ls] = float64(p.Count())
				out[f.name+"_sum"+ls] = p.Sum()
			}
		}
	}
	return out
}
