package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// RequestIDHeader carries the per-request correlation ID on every API
// response and on coordinator→worker /v2/internal/scan fan-out, so one
// audit's shards can be traced across all three processes' logs.
const RequestIDHeader = "X-Request-ID"

type reqIDKey struct{}

// NewRequestID returns a fresh 16-hex-char random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for the process anyway;
		// fall back to a fixed marker rather than panicking in middleware.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID attaches a request ID to ctx.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestID returns the request ID attached to ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}
