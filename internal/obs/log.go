package obs

import (
	"io"
	"log/slog"
	"strings"
)

// NewLogger returns a text-format slog logger writing to w at the given
// level — the one logger constructor shared by wmserver, wmtool serve,
// and tests so log lines stay uniform across all three processes of a
// cluster.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// Discard returns a logger that drops everything; used where a nil
// check at every call site would be noisier than a no-op handler.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }

// ParseLevel maps a -log-level flag value to a slog.Level, defaulting
// to Info for unknown strings.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
