package obs

import (
	"io"
	"log/slog"
	"strings"
)

// NewLogger returns a text-format slog logger writing to w at the given
// level — the one logger constructor shared by wmserver, wmtool serve,
// and tests so log lines stay uniform across all three processes of a
// cluster. Pass a *slog.LevelVar to make the level adjustable at
// runtime (PUT /debug/loglevel); a plain slog.Level fixes it.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// Discard returns a logger that drops everything; used where a nil
// check at every call site would be noisier than a no-op handler.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }

// ParseLevel maps a -log-level flag value to a slog.Level, defaulting
// to Info for unknown strings.
func ParseLevel(s string) slog.Level {
	l, _ := LookupLevel(s)
	return l
}

// LookupLevel is the strict form of ParseLevel: ok is false for
// anything but the four canonical spellings (plus "warning"), so the
// loglevel endpoint can 400 a typo instead of silently going to Info.
func LookupLevel(s string) (slog.Level, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, true
	case "info":
		return slog.LevelInfo, true
	case "warn", "warning":
		return slog.LevelWarn, true
	case "error":
		return slog.LevelError, true
	default:
		return slog.LevelInfo, false
	}
}

// LevelString renders a slog.Level in the flag spelling LookupLevel
// accepts ("debug", "info", "warn", "error").
func LevelString(l slog.Level) string {
	return strings.ToLower(l.String())
}
