package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// unescapeLabel inverts the 0.0.4 label-value escaping — what a
// Prometheus scraper does when it reads the exposition. Round-tripping
// through it is the correctness bar for escapeLabel: whatever bytes go
// into a label value must come back out of the scrape identical.
func unescapeLabel(t *testing.T, s string) string {
	t.Helper()
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			t.Fatalf("dangling backslash in rendered label value %q", s)
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			t.Fatalf("invalid escape \\%c in rendered label value %q", s[i], s)
		}
	}
	return b.String()
}

// TestLabelEscapingRoundTrip drives the exposition-format edge cases
// through a render-then-unescape cycle: backslashes, quotes, newlines,
// and the adversarial combinations (a literal backslash-n that must not
// collapse into a newline, trailing backslashes, quotes hugging
// escapes). Every rendered line must also stay a single line — a raw
// newline in a label value would desynchronize the whole scrape.
func TestLabelEscapingRoundTrip(t *testing.T) {
	values := []string{
		`back\slash`,
		`"quoted"`,
		"new\nline",
		`literal\n-not-a-newline`,
		`trailing\`,
		`\"`,
		"mix\\\"\n\\n\"",
		`\\double`,
		"\n",
		`"`,
		`\`,
	}
	r := NewRegistry()
	vec := r.CounterVec("rt_total", "Round-trip fixture.", "v")
	for i, val := range values {
		vec.With(val).Add(uint64(i) + 1)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}

	got := make(map[string]string) // unescaped label value -> sample value
	for _, line := range strings.Split(b.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, `rt_total{v="`) {
			t.Fatalf("unexpected exposition line %q", line)
		}
		rest := strings.TrimPrefix(line, `rt_total{v="`)
		end := strings.LastIndex(rest, `"} `)
		if end < 0 {
			t.Fatalf("exposition line %q does not close its label value", line)
		}
		got[unescapeLabel(t, rest[:end])] = rest[end+len(`"} `):]
	}
	if len(got) != len(values) {
		t.Fatalf("rendered %d series, want %d:\n%s", len(got), len(values), b.String())
	}
	for i, val := range values {
		want := fmt.Sprint(i + 1)
		if got[val] != want {
			t.Errorf("label value %q: sample = %q, want %q (series lost or collided)", val, got[val], want)
		}
	}
}

// TestSnapshotConcurrentVecCreation hammers the registry's two locking
// layers at once — family creation (registry lock) and series creation
// (family lock) — while Snapshot and WritePrometheus readers run.
// Under -race this is the proof the scrape path can run concurrently
// with a server registering new metrics; the final snapshot must hold
// every series at its exact count.
func TestSnapshotConcurrentVecCreation(t *testing.T) {
	const (
		goroutines = 8
		families   = 4
		increments = 48 // divisible by families: every series ends at increments/families
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				// Same family names from every goroutine: creation must
				// dedupe to one family, counts must merge.
				fam := fmt.Sprintf("conc_%d_total", i%families)
				r.CounterVec(fam, "Concurrent fixture.", "g").With(fmt.Sprint(g)).Inc()
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				_ = r.Snapshot()
				var b strings.Builder
				_ = r.WritePrometheus(&b)
			}
		}()
	}
	wg.Wait()

	snap := r.Snapshot()
	for f := 0; f < families; f++ {
		for g := 0; g < goroutines; g++ {
			key := fmt.Sprintf(`conc_%d_total{g="%d"}`, f, g)
			want := float64(increments / families)
			if snap[key] != want {
				t.Errorf("%s = %v, want %v", key, snap[key], want)
			}
		}
	}
}
