package obs

import (
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics is the standard per-route HTTP instrumentation set.
type HTTPMetrics struct {
	// InFlight counts requests currently being served.
	InFlight *Gauge

	requests *CounterVec   // route, method, code class
	duration *HistogramVec // route
	bytes    *CounterVec   // route
}

// NewHTTPMetrics registers the wm_http_* families on r.
func NewHTTPMetrics(r *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		InFlight: r.Gauge("wm_http_in_flight_requests",
			"Requests currently being served."),
		requests: r.CounterVec("wm_http_requests_total",
			"HTTP requests served, by route pattern, method, and status class.",
			"route", "method", "code"),
		duration: r.HistogramVec("wm_http_request_duration_seconds",
			"HTTP request latency by route pattern.", DefBuckets, "route"),
		bytes: r.CounterVec("wm_http_response_bytes_total",
			"Response body bytes written (including streamed CSV), by route pattern.",
			"route"),
	}
}

// Observe records one completed request.
func (m *HTTPMetrics) Observe(route, method string, status int, d time.Duration, bytes int64) {
	m.requests.With(route, method, StatusClass(status)).Inc()
	m.duration.With(route).Observe(d.Seconds())
	if bytes > 0 {
		m.bytes.With(route).Add(uint64(bytes))
	}
}

// StatusClass collapses an HTTP status code to its class ("2xx" … "5xx")
// to keep label cardinality bounded.
func StatusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// ResponseRecorder wraps a ResponseWriter to capture the status code
// and bytes written, passing Flush through for streaming handlers.
type ResponseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *ResponseRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *ResponseRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Status returns the response status, defaulting to 200 if the handler
// never wrote anything explicit.
func (r *ResponseRecorder) Status() int {
	if r.status == 0 {
		return http.StatusOK
	}
	return r.status
}

// Bytes returns the number of response body bytes written so far.
func (r *ResponseRecorder) Bytes() int64 { return r.bytes }

func (r *ResponseRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (r *ResponseRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }
