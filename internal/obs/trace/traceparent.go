package trace

import "encoding/hex"

// Header is the W3C Trace Context propagation header. The value is the
// version-00 form:
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// with flag bit 0 carrying the sampled decision. Future versions (and
// trailing extra fields, which version 00 forbids but later versions
// allow) are rejected conservatively: an unparseable header means "no
// upstream context" and the receiver mints a fresh trace.
const Header = "traceparent"

// flagSampled is trace-flags bit 0.
const flagSampled = 0x01

// Traceparent renders the context in version-00 wire form.
func (sc SpanContext) Traceparent() string {
	buf := make([]byte, 0, 55)
	buf = append(buf, "00-"...)
	buf = hex.AppendEncode(buf, sc.TraceID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, sc.SpanID[:])
	if sc.Sampled {
		buf = append(buf, "-01"...)
	} else {
		buf = append(buf, "-00"...)
	}
	return string(buf)
}

// ParseTraceparent decodes a version-00 traceparent value. ok is false
// on malformed input, unknown versions, or the all-zero trace/span IDs
// the spec declares invalid.
func ParseTraceparent(s string) (SpanContext, bool) {
	if len(s) != 55 || s[0] != '0' || s[1] != '0' ||
		s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&flagSampled != 0
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}
