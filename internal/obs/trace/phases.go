package trace

import (
	"sync/atomic"
	"time"
)

// Phases accumulates the per-phase wall time of one scan: block
// ingestion (reader goroutine parsing bytes into pooled blocks), kernel
// hashing (the keyed-hash calls inside the block scan), voting (the
// fitness/domain walk and tally around those calls), and the
// stream-order merge of per-block tallies. The adds are atomics because
// ingestion, scanning and merging run on different goroutines; the
// totals are therefore CPU-time sums across workers, not elapsed time —
// a 4-worker scan can report 4s of hash time inside a 1s span.
//
// A nil *Phases is the unsampled case: every method no-ops, and callers
// on the zero-alloc scan path guard the clock reads themselves (no
// time.Now when Phases is nil) so tracing costs one pointer test per
// block when off.
type Phases struct {
	ingest, hash, vote, merge atomic.Int64
}

// AddIngest charges d to block ingestion; no-op on nil.
func (p *Phases) AddIngest(d time.Duration) {
	if p != nil {
		p.ingest.Add(int64(d))
	}
}

// AddHash charges d to kernel hashing; no-op on nil.
func (p *Phases) AddHash(d time.Duration) {
	if p != nil {
		p.hash.Add(int64(d))
	}
}

// AddVote charges d to the fitness/vote walk; no-op on nil.
func (p *Phases) AddVote(d time.Duration) {
	if p != nil {
		p.vote.Add(int64(d))
	}
}

// AddMerge charges d to tally merging; no-op on nil.
func (p *Phases) AddMerge(d time.Duration) {
	if p != nil {
		p.merge.Add(int64(d))
	}
}

// Annotate writes the four phase totals onto a span as *_ns attributes;
// no-op when either side is nil.
func (p *Phases) Annotate(s *Span) {
	if p == nil || s == nil {
		return
	}
	s.SetInt("ingest_ns", p.ingest.Load())
	s.SetInt("hash_ns", p.hash.Load())
	s.SetInt("vote_ns", p.vote.Load())
	s.SetInt("merge_ns", p.merge.Load())
}
