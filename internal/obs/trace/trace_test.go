package trace

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	return ctx
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Sampled: true}
	copy(sc.TraceID[:], "0123456789abcdef")
	copy(sc.SpanID[:], "ABCDEFGH")
	wire := sc.Traceparent()
	if len(wire) != 55 || !strings.HasPrefix(wire, "00-") || !strings.HasSuffix(wire, "-01") {
		t.Fatalf("wire form wrong: %q", wire)
	}
	got, ok := ParseTraceparent(wire)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
	sc.Sampled = false
	got, ok = ParseTraceparent(sc.Traceparent())
	if !ok || got.Sampled {
		t.Fatalf("unsampled flag lost: %+v ok=%v", got, ok)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0102030405060708090a0b0c0d0e0f10-1112131415161718-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatal("valid header rejected")
	}
	bad := []string{
		"",
		"garbage",
		valid[:54],       // truncated
		valid + "0",      // trailing junk
		"01" + valid[2:], // unknown version
		"00-00000000000000000000000000000000-1112131415161718-01", // zero trace ID
		"00-0102030405060708090a0b0c0d0e0f10-0000000000000000-01", // zero span ID
		"00-0102030405060708090a0b0c0d0e0fXY-1112131415161718-01", // non-hex
		strings.ReplaceAll(valid, "-", "_"),
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("accepted malformed traceparent %q", s)
		}
	}
}

func TestStartServerMintsAndJoins(t *testing.T) {
	rec := New(Options{SampleRatio: 1})
	ctx, root := rec.StartServer(testCtx(t), "GET /v2/jobs", "")
	if root == nil {
		t.Fatal("root span nil")
	}
	sc := root.Context()
	if !sc.Valid() || !sc.Sampled {
		t.Fatalf("minted context invalid: %+v", sc)
	}
	got, ok := FromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("FromContext = %+v ok=%v, want %+v", got, ok, sc)
	}

	// A second server (the worker) joins via the wire form.
	rec2 := New(Options{SampleRatio: 0}) // joined traces ignore local ratio
	_, child := rec2.StartServer(testCtx(t), "POST /v2/internal/scan", sc.Traceparent())
	ccs := child.Context()
	if ccs.TraceID != sc.TraceID {
		t.Fatal("joined span did not keep the trace ID")
	}
	if !ccs.Sampled {
		t.Fatal("joined span did not inherit the sampled flag")
	}
	child.End()
	spans := rec2.TraceSpans(sc.TraceID)
	if len(spans) != 1 || spans[0].Parent != sc.SpanID || !spans[0].Remote {
		t.Fatalf("worker-side span wrong: %+v", spans)
	}
}

func TestChildSpansAndTree(t *testing.T) {
	rec := New(Options{SampleRatio: 1})
	ctx, root := rec.StartServer(testCtx(t), "root", "")
	ctx2, a := Start(ctx, "a")
	_, b := Start(ctx2, "b")
	if a == nil || b == nil {
		t.Fatal("sampled children must be non-nil")
	}
	b.SetAttr("k", "v")
	b.SetInt("n", 42)
	b.End()
	a.End()
	root.End()
	spans := rec.TraceSpans(root.Context().TraceID)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["a"].Parent != root.Context().SpanID {
		t.Fatal("a not parented to root")
	}
	if byName["b"].Parent != byName["a"].SpanID {
		t.Fatal("b not parented to a")
	}
	attrs := byName["b"].Attrs
	if len(attrs) != 2 || attrs[0] != (Attr{"k", "v"}) || attrs[1] != (Attr{"n", "42"}) {
		t.Fatalf("attrs wrong: %+v", attrs)
	}
}

func TestUnsampledIsNilAndFree(t *testing.T) {
	rec := New(Options{SampleRatio: 0})
	ctx, root := rec.StartServer(testCtx(t), "root", "")
	if root == nil {
		t.Fatal("root span is always created")
	}
	if root.Context().Sampled {
		t.Fatal("ratio 0 must not sample")
	}
	ctx2, child := Start(ctx, "child")
	if child != nil {
		t.Fatal("unsampled trace produced a child span")
	}
	if ctx2 != ctx {
		t.Fatal("unsampled Start must return ctx unchanged")
	}
	// The whole nil-span API must be no-op safe.
	child.SetAttr("k", "v")
	child.SetInt("n", 1)
	child.SetError(errors.New("x"))
	child.End()
	root.End()
	if spans := rec.TraceSpans(root.Context().TraceID); len(spans) != 0 {
		t.Fatalf("unsampled clean root must not be recorded, got %+v", spans)
	}
}

func TestErroredRootRecordedDespiteSampling(t *testing.T) {
	rec := New(Options{SampleRatio: 0})
	_, root := rec.StartServer(testCtx(t), "root", "")
	root.SetError(errors.New("boom"))
	root.End()
	spans := rec.TraceSpans(root.Context().TraceID)
	if len(spans) != 1 || spans[0].Err != "boom" {
		t.Fatalf("errored root not retained: %+v", spans)
	}
	flight := rec.Flight()
	if len(flight) != 1 || flight[0].Err != "boom" {
		t.Fatalf("flight recorder missed the error: %+v", flight)
	}
}

func TestFlightRetainsSlowest(t *testing.T) {
	rec := New(Options{SampleRatio: 1, FlightSlots: 2})
	durs := []time.Duration{time.Millisecond, 5 * time.Millisecond, 3 * time.Millisecond}
	for _, d := range durs {
		_, root := rec.StartServer(testCtx(t), "req", "")
		root.start = root.start.Add(-d) // backdate instead of sleeping
		root.End()
	}
	flight := rec.Flight()
	if len(flight) != 2 {
		t.Fatalf("got %d flight entries, want 2", len(flight))
	}
	if flight[0].Duration < flight[1].Duration {
		t.Fatal("flight list not slowest-first")
	}
	if flight[1].Duration < 3*time.Millisecond {
		t.Fatalf("fastest request survived eviction: %v", flight[1].Duration)
	}
}

func TestRingEviction(t *testing.T) {
	rec := New(Options{SampleRatio: 1, Capacity: 4})
	_, root := rec.StartServer(testCtx(t), "root", "")
	ctx := rec.Attach(testCtx(t), root.Context())
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, "child")
		sp.End()
	}
	spans := rec.TraceSpans(root.Context().TraceID)
	if len(spans) != 4 {
		t.Fatalf("ring of 4 retained %d spans", len(spans))
	}
}

func TestAttachLinksDetachedContext(t *testing.T) {
	rec := New(Options{SampleRatio: 1})
	_, root := rec.StartServer(testCtx(t), "root", "")
	detached := rec.Attach(testCtx(t), root.Context())
	_, sp := Start(detached, "job.run")
	if sp == nil {
		t.Fatal("Attach did not re-establish the trace")
	}
	sp.End()
	root.End()
	spans := rec.TraceSpans(root.Context().TraceID)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
}

func TestNilRecorder(t *testing.T) {
	var rec *Recorder
	ctx, sp := rec.StartServer(testCtx(t), "root", "")
	if sp != nil {
		t.Fatal("nil recorder must hand out nil spans")
	}
	sp.End()
	if _, ok := FromContext(ctx); ok {
		t.Fatal("nil recorder must not install a span context")
	}
	if rec.TraceSpans(TraceID{1}) != nil || rec.Flight() != nil {
		t.Fatal("nil recorder reads must be empty")
	}
	if ctx2 := rec.Attach(ctx, SpanContext{}); ctx2 != ctx {
		t.Fatal("nil recorder Attach must be identity")
	}
}

func TestSamplingDeterministicAcrossProcesses(t *testing.T) {
	a := New(Options{SampleRatio: 0.5})
	b := New(Options{SampleRatio: 0.5})
	var sampled int
	for i := 0; i < 256; i++ {
		tid := newTraceID()
		if a.sampled(tid) != b.sampled(tid) {
			t.Fatal("sampling decision differs between identically-configured recorders")
		}
		if a.sampled(tid) {
			sampled++
		}
	}
	if sampled == 0 || sampled == 256 {
		t.Fatalf("ratio 0.5 sampled %d/256 — threshold looks broken", sampled)
	}
}

func TestEndIdempotent(t *testing.T) {
	rec := New(Options{SampleRatio: 1})
	_, root := rec.StartServer(testCtx(t), "root", "")
	root.End()
	d := root.dur
	time.Sleep(time.Millisecond)
	root.End()
	if root.dur != d {
		t.Fatal("second End changed the duration")
	}
	if spans := rec.TraceSpans(root.Context().TraceID); len(spans) != 1 {
		t.Fatalf("double End recorded %d spans", len(spans))
	}
}

func TestConcurrentRecordAndRead(t *testing.T) {
	rec := New(Options{SampleRatio: 1, Capacity: 64})
	_, root := rec.StartServer(testCtx(t), "root", "")
	ctx := rec.Attach(testCtx(t), root.Context())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, sp := Start(ctx, "child")
				sp.SetInt("i", int64(i))
				sp.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			rec.TraceSpans(root.Context().TraceID)
			rec.Flight()
		}
	}()
	wg.Wait()
	<-done
	if got := len(rec.TraceSpans(root.Context().TraceID)); got != 64 {
		t.Fatalf("full ring should hold 64 spans, got %d", got)
	}
}

func TestPhases(t *testing.T) {
	var p *Phases
	p.AddIngest(time.Second) // nil-safe
	p.Annotate(nil)

	p = &Phases{}
	p.AddIngest(time.Millisecond)
	p.AddHash(2 * time.Millisecond)
	p.AddHash(time.Millisecond)
	p.AddVote(4 * time.Millisecond)
	p.AddMerge(5 * time.Millisecond)
	rec := New(Options{SampleRatio: 1})
	_, sp := rec.StartServer(testCtx(t), "scan", "")
	p.Annotate(sp)
	sp.End()
	spans := rec.TraceSpans(sp.Context().TraceID)
	want := map[string]string{
		"ingest_ns": "1000000", "hash_ns": "3000000",
		"vote_ns": "4000000", "merge_ns": "5000000",
	}
	got := map[string]string{}
	for _, a := range spans[0].Attrs {
		got[a.Key] = a.Value
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("attr %s = %q, want %q", k, got[k], v)
		}
	}
}

func TestParseTraceID(t *testing.T) {
	tid := newTraceID()
	got, ok := ParseTraceID(tid.String())
	if !ok || got != tid {
		t.Fatalf("ParseTraceID round trip failed: %v %v", got, ok)
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("0", 32), strings.Repeat("g", 32)} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("accepted bad trace ID %q", bad)
		}
	}
}
