package trace

import (
	"sort"
	"sync"
)

// flightRecorder retains the root spans worth keeping after the ring
// has moved on: the slowest N requests the process has served and the
// last N that errored. Sampling does not gate it — every root span is
// offered at End — so "why was that request slow last night?" has an
// answer even at low sample ratios. Offers are rare (one per finished
// request) and the lists are tiny, so a mutex is fine here; the hot
// path stays in the ring.
type flightRecorder struct {
	mu      sync.Mutex
	slots   int
	slowest []SpanData // unordered; min evicted on overflow
	errored []SpanData // FIFO of the last `slots` errors
}

func (f *flightRecorder) offer(s *Span) {
	d := s.data()
	f.mu.Lock()
	defer f.mu.Unlock()
	if d.Err != "" {
		f.errored = append(f.errored, d)
		if len(f.errored) > f.slots {
			f.errored = f.errored[1:]
		}
		return
	}
	if len(f.slowest) < f.slots {
		f.slowest = append(f.slowest, d)
		return
	}
	min := 0
	for i := range f.slowest {
		if f.slowest[i].Duration < f.slowest[min].Duration {
			min = i
		}
	}
	if d.Duration > f.slowest[min].Duration {
		f.slowest[min] = d
	}
}

// list returns errored entries first (newest first), then the slowest
// successes in descending duration.
func (f *flightRecorder) list() []SpanData {
	f.mu.Lock()
	out := make([]SpanData, 0, len(f.errored)+len(f.slowest))
	for i := len(f.errored) - 1; i >= 0; i-- {
		out = append(out, f.errored[i])
	}
	slow := append([]SpanData(nil), f.slowest...)
	f.mu.Unlock()
	sort.Slice(slow, func(i, j int) bool { return slow[i].Duration > slow[j].Duration })
	return append(out, slow...)
}
