// Package trace is the request-scoped third pillar next to the metrics
// and logs of internal/obs: in-process distributed tracing with W3C
// trace-context propagation, built on the standard library alone.
//
// The model is deliberately small. A Span is one timed operation with a
// name, a parent, and string attributes. Spans of one request — across
// processes — share a 16-byte trace ID carried in the `traceparent`
// header (W3C Trace Context, version 00). Finished spans land in a
// bounded lock-free ring per process; a trace is assembled by scanning
// the ring for its ID, and cross-process trees by asking each process
// for its shard of the trace.
//
// Sampling is head-based: the decision is derived from the trace ID the
// moment the root span starts, propagates in the traceparent flags, and
// gates all child-span creation — an unsampled request costs one nil
// check per instrumentation point. Two retention rules soften the
// sampling loss: a root span that ends in error is recorded even when
// unsampled, and the flight recorder keeps the slowest and the errored
// root spans regardless of how long ago they happened.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// TraceID identifies one request tree across processes (W3C trace-id).
type TraceID [16]byte

// SpanID identifies one span within a trace (W3C parent-id).
type SpanID [8]byte

// IsZero reports the invalid all-zero trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String is the 32-char lowercase hex form used on the wire.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports the invalid all-zero span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String is the 16-char lowercase hex form used on the wire.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID decodes the 32-char hex form; ok is false for malformed
// or all-zero input.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return t, !t.IsZero()
}

// SpanContext is the propagated identity of a span: everything a child
// — local or on another process — needs to link itself into the tree.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Attr is one key/value annotation on a span. Values are strings;
// numeric attributes go through Span.SetInt so render order and
// formatting stay uniform.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation. Create spans through Recorder.StartServer
// or Start; a nil *Span is valid and every method on it is a no-op, so
// instrumentation never branches on the sampling decision. Mutate a span
// from one goroutine only, and not after End — End publishes it to the
// ring, where concurrent readers assume it is frozen.
type Span struct {
	rec    *Recorder
	sc     SpanContext
	parent SpanID
	root   bool

	name  string
	start time.Time
	dur   time.Duration
	err   string
	attrs []Attr

	ended atomic.Bool
}

// Context returns the span's propagated identity; safe on nil (invalid
// zero context).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr annotates the span; no-op on nil or after End.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.ended.Load() {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetInt annotates the span with an integer value; no-op on nil.
func (s *Span) SetInt(key string, value int64) {
	if s == nil || s.ended.Load() {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatInt(value, 10)})
}

// SetError marks the span failed. Errored root spans are recorded and
// retained by the flight recorder even when the trace is unsampled.
func (s *Span) SetError(err error) {
	if s == nil || err == nil || s.ended.Load() {
		return
	}
	s.err = err.Error()
}

// End freezes the span's duration and publishes it to the recorder's
// ring (when the trace is sampled, or the span errored). Idempotent;
// no-op on nil.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.dur = time.Since(s.start)
	if s.rec == nil {
		return
	}
	if s.sc.Sampled || s.err != "" {
		s.rec.record(s)
	}
	if s.root {
		s.rec.flight.offer(s)
	}
}

// SpanData is the frozen export form of a finished span — what the
// trace endpoints serialize and the flight recorder lists.
type SpanData struct {
	TraceID  TraceID
	SpanID   SpanID
	Parent   SpanID
	Remote   bool // parent span lives on another process
	Name     string
	Start    time.Time
	Duration time.Duration
	Err      string
	Attrs    []Attr
}

func (s *Span) data() SpanData {
	return SpanData{
		TraceID:  s.sc.TraceID,
		SpanID:   s.sc.SpanID,
		Parent:   s.parent,
		Remote:   s.root && !s.parent.IsZero(),
		Name:     s.name,
		Start:    s.start,
		Duration: s.dur,
		Err:      s.err,
		Attrs:    s.attrs,
	}
}

// Options configures a Recorder. The zero value means: 4096 ring slots,
// sample nothing (errors are still retained), keep 16 flight entries.
type Options struct {
	// Capacity is the span-ring size; finished spans beyond it evict
	// the oldest. Default 4096.
	Capacity int
	// SampleRatio is the head-sampling probability in [0, 1]. The
	// decision is a pure function of the trace ID, so every process
	// of a cluster agrees without coordination. Values outside the
	// range are clamped.
	SampleRatio float64
	// FlightSlots bounds each of the flight recorder's two retention
	// lists (slowest, errored). Default 16.
	FlightSlots int
}

// Recorder owns a process's span ring and flight recorder. A nil
// Recorder is valid: StartServer returns a nil span and tracing
// disappears. Recording is lock-free — End claims a slot with one
// atomic add and publishes the span with one atomic store.
type Recorder struct {
	ratio  float64
	pos    atomic.Uint64
	slots  []atomic.Pointer[Span]
	flight flightRecorder
}

// New builds a Recorder; see Options for defaults.
func New(opts Options) *Recorder {
	if opts.Capacity <= 0 {
		opts.Capacity = 4096
	}
	if opts.FlightSlots <= 0 {
		opts.FlightSlots = 16
	}
	r := &Recorder{
		ratio: math.Min(math.Max(opts.SampleRatio, 0), 1),
		slots: make([]atomic.Pointer[Span], opts.Capacity),
	}
	r.flight.slots = opts.FlightSlots
	return r
}

// sampled is the head decision: a threshold test on the trace ID's low
// half, so the same trace ID samples identically on every process.
func (r *Recorder) sampled(t TraceID) bool {
	if r.ratio >= 1 {
		return true
	}
	if r.ratio <= 0 {
		return false
	}
	v := binary.BigEndian.Uint64(t[8:])
	return float64(v) < r.ratio*float64(math.MaxUint64)
}

func (r *Recorder) record(s *Span) {
	slot := (r.pos.Add(1) - 1) % uint64(len(r.slots))
	r.slots[slot].Store(s)
}

// TraceSpans returns the ring's retained spans of one trace, oldest
// first by start time. The ring is bounded, so a long-gone trace may
// have been evicted; callers treat the result as best-effort.
func (r *Recorder) TraceSpans(t TraceID) []SpanData {
	if r == nil || t.IsZero() {
		return nil
	}
	var out []SpanData
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil && s.sc.TraceID == t {
			out = append(out, s.data())
		}
	}
	sortSpans(out)
	return out
}

// Flight lists the flight recorder's retained root spans — the slowest
// and the errored — slowest first.
func (r *Recorder) Flight() []SpanData {
	if r == nil {
		return nil
	}
	return r.flight.list()
}

// StartServer opens the root span of one inbound request. When the
// traceparent header (may be empty) carries a valid upstream context
// the span joins that trace as a remote child and inherits its sampled
// flag; otherwise a fresh trace ID is minted and the head-sampling
// decision made. The root span is always created — its duration and
// error feed the flight recorder — but child spans exist only on
// sampled traces. Ends must be guaranteed (defer sp.End()); the spanend
// analyzer enforces this across internal/.
func (r *Recorder) StartServer(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	var (
		tid     TraceID
		parent  SpanID
		sampled bool
	)
	if up, ok := ParseTraceparent(traceparent); ok {
		tid, parent, sampled = up.TraceID, up.SpanID, up.Sampled
	} else {
		tid = newTraceID()
		sampled = r.sampled(tid)
	}
	s := &Span{
		rec:    r,
		sc:     SpanContext{TraceID: tid, SpanID: newSpanID(), Sampled: sampled},
		parent: parent,
		root:   true,
		name:   name,
		start:  time.Now(),
	}
	return context.WithValue(ctx, ctxKey{}, ref{rec: r, sc: s.sc}), s
}

// Start opens a child of the span context carried by ctx. On an
// unsampled (or untraced) context it returns ctx unchanged and a nil
// span — the zero-cost path. Pair every Start with an End.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	rf, ok := ctx.Value(ctxKey{}).(ref)
	if !ok || rf.rec == nil || !rf.sc.Sampled {
		return ctx, nil
	}
	s := &Span{
		rec:    rf.rec,
		sc:     SpanContext{TraceID: rf.sc.TraceID, SpanID: newSpanID(), Sampled: true},
		parent: rf.sc.SpanID,
		name:   name,
		start:  time.Now(),
	}
	return context.WithValue(ctx, ctxKey{}, ref{rec: rf.rec, sc: s.sc}), s
}

// Attach re-establishes a span context on a detached ctx — the job
// manager's base context, say — so spans started under it link into the
// submitting request's trace.
func (r *Recorder) Attach(ctx context.Context, sc SpanContext) context.Context {
	if r == nil || !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ref{rec: r, sc: sc})
}

// FromContext returns the active span context, for propagation (the
// client's traceparent header) or capture across a detach boundary (job
// submission).
func FromContext(ctx context.Context) (SpanContext, bool) {
	rf, ok := ctx.Value(ctxKey{}).(ref)
	if !ok || !rf.sc.Valid() {
		return SpanContext{}, false
	}
	return rf.sc, true
}

type ctxKey struct{}

// ref is what rides the context: the span context plus the recorder
// that will own any children started under it.
type ref struct {
	rec *Recorder
	sc  SpanContext
}

// idCounter backs ID generation when crypto/rand fails (it effectively
// never does); the high bit keeps fallback IDs nonzero and disjoint
// from each other.
var idCounter atomic.Uint64

func newTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil || t.IsZero() {
		binary.BigEndian.PutUint64(t[:8], 1)
		binary.BigEndian.PutUint64(t[8:], idCounter.Add(1))
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	if _, err := rand.Read(s[:]); err != nil || s.IsZero() {
		binary.BigEndian.PutUint64(s[:], idCounter.Add(1)|1<<63)
	}
	return s
}

// sortSpans orders by start time, then name for determinism on equal
// clocks (insertion sort: trace span counts are small).
func sortSpans(spans []SpanData) {
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && earlier(spans[j], spans[j-1]); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

func earlier(a, b SpanData) bool {
	if !a.Start.Equal(b.Start) {
		return a.Start.Before(b.Start)
	}
	return a.Name < b.Name
}
