package server

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server/store"
)

// Run is the shared bootstrap behind cmd/wmserver and `wmtool serve`: it
// opens the certificate store at storeDir, serves the API on addr, and on
// SIGINT/SIGTERM drains in-flight requests before returning — embed and
// verify jobs are never hard-killed mid-write. Async jobs still queued or
// running when the drain completes are cancelled through their contexts.
func Run(addr, storeDir string, cfg Config) error {
	st, err := store.Open(storeDir)
	if err != nil {
		return err
	}
	if cfg.Log == nil {
		cfg.Log = obs.NewLogger(os.Stderr, slog.LevelInfo)
	}
	srv := New(st, cfg)
	defer srv.Close()
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Parked long-polls answer immediately when the drain starts;
	// otherwise a single GET /v2/jobs/{id}?wait=30s outlives the
	// shutdown timeout and turns a clean drain into an error.
	httpSrv.RegisterOnShutdown(srv.DrainLongPolls)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	cfg.Log.Info("listening", "addr", addr, "store", storeDir, "workers", workers)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	// Join the cluster (if -join configured) once the listener is
	// starting: registration is retried at the heartbeat cadence, so the
	// race between first beat and first dispatched shard is harmless.
	srv.Join()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		cfg.Log.Info("shutting down", "signal", s.String())
		//wmlint:ignore ctxloop shutdown grace period runs after the serve ctx is already cancelled
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
