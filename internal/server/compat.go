// Backward-compatible names for the wire types that used to be declared
// in this package. The contract now lives in internal/api (shared with
// the internal/client SDK); these aliases keep existing imports and the
// original httptest suites compiling unchanged. New code should name the
// api types directly.
package server

import "repro/internal/api"

// Deprecated: use the internal/api types directly.
type (
	WatermarkRequest    = api.WatermarkRequest
	WatermarkResponse   = api.WatermarkResponse
	VerifyRequest       = api.VerifyRequest
	VerifyResponse      = api.VerifyResponse
	BatchVerifyRequest  = api.BatchVerifyRequest
	BatchVerifyResult   = api.BatchVerifyResult
	BatchVerifyResponse = api.BatchVerifyResponse
	RecordInfo          = api.RecordInfo

	// apiError keeps the package-internal error alias the test suites
	// decode into.
	apiError = api.Error
)

// Deprecated: use api.ContentTypeCSV / api.ContentTypeNDJSON.
const (
	contentTypeCSV    = api.ContentTypeCSV
	contentTypeNDJSON = api.ContentTypeNDJSON
)
