package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// scrapeMetrics GETs /metrics and parses the exposition into a
// series→value map keyed by `name{label="v",...}` (or bare `name`).
func scrapeMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// metricSum adds every series whose key starts with prefix — the way to
// assert "this family is nonzero" without pinning label values.
func metricSum(m map[string]float64, prefix string) float64 {
	var sum float64
	for k, v := range m {
		if strings.HasPrefix(k, prefix) {
			sum += v
		}
	}
	return sum
}

// submitBatchJob submits a verify_batch job and returns its resource.
func submitBatchJob(t *testing.T, baseURL string, req api.BatchVerifyRequest, header http.Header) api.Job {
	t.Helper()
	body, err := json.Marshal(api.JobRequest{Kind: api.JobKindVerifyBatch, VerifyBatch: &req})
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, baseURL+"/v2/jobs", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", api.ContentTypeJSON)
	for k, vs := range header {
		hreq.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job api.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %+v", resp.StatusCode, job)
	}
	return job
}

// waitJobDone polls until the job reaches a terminal state.
func waitJobDone(t *testing.T, baseURL, id string) api.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var job api.Job
		if s := getJSON(t, baseURL+"/v2/jobs/"+id, &job); s != http.StatusOK {
			t.Fatalf("get job status %d", s)
		}
		if job.State == api.JobDone || job.State == api.JobFailed || job.State == api.JobCancelled {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMetricsEndpointExposesAllLayers drives one request through each
// instrumented layer and asserts the corresponding families show up on
// /metrics with sane values.
func TestMetricsEndpointExposesAllLayers(t *testing.T) {
	ts, _ := newTestServerWithClose(t, Config{Workers: 2})
	csv, domain := testCSV(t, 3000)
	owner, marked := watermarkFixture(t, ts, "metrics-owner", csv, domain)

	job := submitBatchJob(t, ts.URL, api.BatchVerifyRequest{
		Records: []string{owner}, Schema: testSchemaSpec, Data: marked,
	}, nil)
	final := waitJobDone(t, ts.URL, job.ID)
	if final.State != api.JobDone {
		t.Fatalf("job finished %s: %+v", final.State, final.Error)
	}

	m := scrapeMetrics(t, ts.URL)

	// HTTP layer: the watermark and job calls above must be counted as
	// 2xx, and the duration histogram must have observed them.
	if got := metricSum(m, `wm_http_requests_total{`); got < 3 {
		t.Fatalf("wm_http_requests_total sums to %v, want >= 3", got)
	}
	if got := metricSum(m, `wm_http_request_duration_seconds_count{`); got < 3 {
		t.Fatalf("duration histogram count %v, want >= 3", got)
	}
	if _, ok := m["wm_http_in_flight_requests"]; !ok {
		t.Fatal("wm_http_in_flight_requests missing")
	}
	if got := metricSum(m, `wm_http_response_bytes_total{`); got <= 0 {
		t.Fatalf("wm_http_response_bytes_total sums to %v, want > 0", got)
	}

	// Jobs layer: one verify_batch job ran to done, its tuples counted.
	if got := m[`wm_jobs_total{kind="verify_batch",state="done"}`]; got != 1 {
		t.Fatalf(`wm_jobs_total{verify_batch,done} = %v, want 1`, got)
	}
	if got := m["wm_jobs_tuples_scanned_total"]; got <= 0 {
		t.Fatalf("wm_jobs_tuples_scanned_total = %v, want > 0", got)
	}
	if got := m["wm_jobs_queue_wait_seconds_count"]; got < 1 {
		t.Fatalf("queue wait histogram count %v, want >= 1", got)
	}
	if got := m["wm_jobs_workers"]; got <= 0 {
		t.Fatalf("wm_jobs_workers = %v, want > 0", got)
	}

	// Scan hot path: process-wide, so >= what this test scanned.
	if got := m["wm_scan_tuples_total"]; got <= 0 {
		t.Fatalf("wm_scan_tuples_total = %v, want > 0", got)
	}
	if got := m["wm_scan_blocks_total"]; got <= 0 {
		t.Fatalf("wm_scan_blocks_total = %v, want > 0", got)
	}
	if got := metricSum(m, `wm_keyhash_kernel_calls_total{`); got <= 0 {
		t.Fatalf("wm_keyhash_kernel_calls_total sums to %v, want > 0", got)
	}

	// Scanner cache and process vitals.
	if got := m["wm_scanner_cache_entries"]; got <= 0 {
		t.Fatalf("wm_scanner_cache_entries = %v, want > 0", got)
	}
	if got := m["wm_process_goroutines"]; got <= 0 {
		t.Fatalf("wm_process_goroutines = %v, want > 0", got)
	}
	if _, ok := m["wm_uptime_seconds"]; !ok {
		t.Fatal("wm_uptime_seconds missing")
	}
}

// TestConcurrentScrapesDuringJob hammers /metrics from several goroutines
// while a batch-verify job is scanning — the lock-ordering proof for the
// sampled collectors, meaningful under -race (CI runs it so).
func TestConcurrentScrapesDuringJob(t *testing.T) {
	ts, _ := newTestServerWithClose(t, Config{Workers: 2})
	csv, domain := testCSV(t, 12000)
	owner, marked := watermarkFixture(t, ts, "scrape-owner", csv, domain)

	job := submitBatchJob(t, ts.URL, api.BatchVerifyRequest{
		Records: []string{owner}, Schema: testSchemaSpec, Data: marked,
	}, nil)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/metrics status %d mid-job", resp.StatusCode)
					return
				}
			}
		}()
	}
	final := waitJobDone(t, ts.URL, job.ID)
	close(done)
	wg.Wait()
	if final.State != api.JobDone {
		t.Fatalf("job finished %s: %+v", final.State, final.Error)
	}
	m := scrapeMetrics(t, ts.URL)
	if got := m["wm_jobs_tuples_scanned_total"]; got < 12000 {
		t.Fatalf("wm_jobs_tuples_scanned_total = %v, want >= 12000", got)
	}
}

// TestJobsListIncludesProgress pins the satellite fix: list items carry
// the progress field (previously dropped by omitempty at zero) and agree
// with the single-resource GET.
func TestJobsListIncludesProgress(t *testing.T) {
	ts, _ := newTestServerWithClose(t, Config{Workers: 2})
	csv, domain := testCSV(t, 4000)
	owner, marked := watermarkFixture(t, ts, "progress-owner", csv, domain)

	job := submitBatchJob(t, ts.URL, api.BatchVerifyRequest{
		Records: []string{owner}, Schema: testSchemaSpec, Data: marked,
	}, nil)
	final := waitJobDone(t, ts.URL, job.ID)
	if final.State != api.JobDone || final.Progress <= 0 {
		t.Fatalf("job %s: state %s progress %d", job.ID, final.State, final.Progress)
	}

	resp, err := http.Get(ts.URL + "/v2/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw struct {
		Jobs []map[string]json.RawMessage `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if len(raw.Jobs) != 1 {
		t.Fatalf("listed %d jobs, want 1", len(raw.Jobs))
	}
	progRaw, ok := raw.Jobs[0]["progress"]
	if !ok {
		t.Fatalf("list item omits progress: %v", raw.Jobs[0])
	}
	var prog int64
	if err := json.Unmarshal(progRaw, &prog); err != nil {
		t.Fatal(err)
	}
	if prog != final.Progress {
		t.Fatalf("list progress %d != GET progress %d", prog, final.Progress)
	}
}

// TestRequestIDEchoAndFormat: every response carries X-Request-ID — the
// caller's when supplied, a generated 16-hex-char one otherwise.
func TestRequestIDEchoAndFormat(t *testing.T) {
	ts, _ := newTestServerWithClose(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	id := resp.Header.Get(obs.RequestIDHeader)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("generated request id %q, want 16 hex chars", id)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "deadbeef00c0ffee")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "deadbeef00c0ffee" {
		t.Fatalf("inbound request id not honoured: got %q", got)
	}
}

// TestRequestIDPropagatesToWorkers is the correlation contract across
// the cluster hop: the ID on the submitting API call must arrive in the
// X-Request-ID header of every /v2/internal/scan the coordinator fans
// out for that job.
func TestRequestIDPropagatesToWorkers(t *testing.T) {
	srv, ts := newClusterCoordinator(t, 700)
	csv, domain := testCSV(t, 3000)
	owner, marked := watermarkFixture(t, ts, "reqid-owner", csv, domain)

	var mu sync.Mutex
	var seen []string
	newClusterWorker(t, srv, "w0", 2, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/v2/internal/scan") {
				mu.Lock()
				seen = append(seen, r.Header.Get(obs.RequestIDHeader))
				mu.Unlock()
			}
			next.ServeHTTP(w, r)
		})
	})

	const reqID = "feedface12345678"
	job := submitBatchJob(t, ts.URL, api.BatchVerifyRequest{
		Records: []string{owner}, Schema: testSchemaSpec, Data: marked,
	}, http.Header{obs.RequestIDHeader: []string{reqID}})
	final := waitJobDone(t, ts.URL, job.ID)
	if final.State != api.JobDone {
		t.Fatalf("job finished %s: %+v", final.State, final.Error)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("no shard scans reached the worker")
	}
	for i, got := range seen {
		if got != reqID {
			t.Fatalf("shard call %d carried request id %q, want %q", i, got, reqID)
		}
	}

	// The cluster families must have counted the fan-out.
	m := scrapeMetrics(t, ts.URL)
	if got := metricSum(m, `wm_cluster_shards_dispatched_total{`); got < float64(len(seen)) {
		t.Fatalf("wm_cluster_shards_dispatched_total sums to %v, want >= %d", got, len(seen))
	}
	if got := m["wm_cluster_workers_live"]; got != 1 {
		t.Fatalf("wm_cluster_workers_live = %v, want 1", got)
	}
	if got := metricSum(m, `wm_cluster_shard_duration_seconds_count{`); got < float64(len(seen)) {
		t.Fatalf("shard duration histogram count %v, want >= %d", got, len(seen))
	}
}
