package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/server/store"
)

// postRaw posts a raw (streamed) body with an explicit content type.
func postRaw(t *testing.T, rawURL, contentType, body string, out any) int {
	t.Helper()
	resp, err := http.Post(rawURL, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

// watermarkFixture embeds a watermark over the API and returns the stored
// certificate ID plus the marked CSV.
func watermarkFixture(t *testing.T, ts *httptest.Server, secret, csv string, domain []string) (id, marked string) {
	t.Helper()
	var wmResp WatermarkResponse
	status := postJSON(t, ts.URL+"/v1/watermark", WatermarkRequest{
		Schema:    testSchemaSpec,
		Data:      csv,
		Secret:    secret,
		Attribute: "Item_Nbr",
		WM:        "1011001110",
		E:         30,
		Domain:    domain,
	}, &wmResp)
	if status != http.StatusOK {
		t.Fatalf("watermark status %d: %+v", status, wmResp)
	}
	return wmResp.ID, wmResp.Data
}

// TestVerifyBatchStreamedCSV is the acceptance round-trip: a suspect
// dataset streamed as a raw text/csv body is verified against the whole
// stored catalog in one scan — the certificate that marked it reads
// "present", the innocent one "absent" — without the dataset ever
// landing in a request struct.
func TestVerifyBatchStreamedCSV(t *testing.T) {
	ts := newTestServer(t)
	csv, domain := testCSV(t, 6000)
	owner, marked := watermarkFixture(t, ts, "batch-owner", csv, domain)
	other, _ := watermarkFixture(t, ts, "other-owner", csv, domain)

	// Whole catalog (no records parameter).
	u := ts.URL + "/v1/verify/batch?schema=" + url.QueryEscape(testSchemaSpec)
	var resp BatchVerifyResponse
	if status := postRaw(t, u, contentTypeCSV, marked, &resp); status != http.StatusOK {
		t.Fatalf("batch status %d: %+v", status, resp)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2 (whole catalog): %+v", len(resp.Results), resp)
	}
	byID := map[string]BatchVerifyResult{}
	for _, res := range resp.Results {
		byID[res.ID] = res
	}
	if got := byID[owner]; got.Match != 1 || got.Verdict != "present" || got.Error != "" {
		t.Fatalf("owner certificate: %+v", got)
	}
	if got := byID[other]; got.Verdict != "absent" || got.Error != "" {
		t.Fatalf("innocent certificate: %+v", got)
	}
	if resp.Tuples != 6000 {
		t.Fatalf("scanned %d tuples, want 6000", resp.Tuples)
	}

	// Explicit selection preserves request order.
	u = ts.URL + "/v1/verify/batch?schema=" + url.QueryEscape(testSchemaSpec) +
		"&records=" + other + "," + owner
	if status := postRaw(t, u, contentTypeCSV, marked, &resp); status != http.StatusOK {
		t.Fatalf("batch status %d", status)
	}
	if len(resp.Results) != 2 || resp.Results[0].ID != other || resp.Results[1].ID != owner {
		t.Fatalf("selection order not preserved: %+v", resp.Results)
	}
	if resp.Results[1].Match != 1 {
		t.Fatalf("owner certificate via selection: %+v", resp.Results[1])
	}

	// A trailing comma in the selection is tolerated, not a 404 on "".
	u = ts.URL + "/v1/verify/batch?schema=" + url.QueryEscape(testSchemaSpec) +
		"&records=" + owner + ","
	if status := postRaw(t, u, contentTypeCSV, marked, &resp); status != http.StatusOK {
		t.Fatalf("trailing comma: status %d", status)
	}
	if len(resp.Results) != 1 || resp.Results[0].Match != 1 {
		t.Fatalf("trailing comma results: %+v", resp.Results)
	}

	// An unknown ID in the selection is a 404, not a silent skip.
	u = ts.URL + "/v1/verify/batch?schema=" + url.QueryEscape(testSchemaSpec) +
		"&records=00000000000000000000000000000000"
	var e apiError
	if status := postRaw(t, u, contentTypeCSV, marked, &e); status != http.StatusNotFound {
		t.Fatalf("unknown record: status %d, want 404 (%+v)", status, e)
	}
}

// TestVerifyBatchJSONBody exercises the inline-JSON form of the batch
// endpoint with an explicit record selection.
func TestVerifyBatchJSONBody(t *testing.T) {
	ts := newTestServer(t)
	csv, domain := testCSV(t, 4000)
	owner, marked := watermarkFixture(t, ts, "json-batch-owner", csv, domain)

	var resp BatchVerifyResponse
	status := postJSON(t, ts.URL+"/v1/verify/batch", BatchVerifyRequest{
		Records: []string{owner},
		Schema:  testSchemaSpec,
		Data:    marked,
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %+v", status, resp)
	}
	if len(resp.Results) != 1 || resp.Results[0].Match != 1 || resp.Results[0].Verdict != "present" {
		t.Fatalf("batch JSON verify: %+v", resp.Results)
	}
}

// TestVerifyStreamedNDJSON round-trips a single-certificate streaming
// verify with an application/x-ndjson body.
func TestVerifyStreamedNDJSON(t *testing.T) {
	ts := newTestServer(t)
	csv, domain := testCSV(t, 4000)
	owner, marked := watermarkFixture(t, ts, "ndjson-owner", csv, domain)

	schema, err := relation.ParseSchemaSpec(testSchemaSpec)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := relation.ReadCSV(strings.NewReader(marked), schema)
	if err != nil {
		t.Fatal(err)
	}
	var ndjson strings.Builder
	if err := relation.WriteJSONL(&ndjson, rel); err != nil {
		t.Fatal(err)
	}

	u := ts.URL + "/v1/verify?id=" + owner + "&schema=" + url.QueryEscape(testSchemaSpec)
	var vResp VerifyResponse
	if status := postRaw(t, u, contentTypeNDJSON, ndjson.String(), &vResp); status != http.StatusOK {
		t.Fatalf("streamed verify status %d: %+v", status, vResp)
	}
	if vResp.Match != 1 || vResp.Verdict != "present" {
		t.Fatalf("streamed verify: %+v", vResp)
	}
	if vResp.FrequencyMatch != -1 {
		t.Fatalf("one-pass streaming verify scored the frequency channel: %+v", vResp)
	}

	// Streaming verify without an id is a 400.
	var e apiError
	u = ts.URL + "/v1/verify?schema=" + url.QueryEscape(testSchemaSpec)
	if status := postRaw(t, u, contentTypeCSV, marked, &e); status != http.StatusBadRequest {
		t.Fatalf("missing id: status %d, want 400", status)
	}
}

// TestRequestBodyLimits asserts every request body — JSON and raw
// streamed alike — is bounded by http.MaxBytesReader and rejected with
// 413, not buffered without limit.
func TestRequestBodyLimits(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(st, Config{Workers: 2, MaxBodyBytes: 4096}).Handler())
	t.Cleanup(ts.Close)

	big := strings.Repeat("x", 8192)

	var e apiError
	if status := postJSON(t, ts.URL+"/v1/watermark", WatermarkRequest{
		Schema: testSchemaSpec, Data: big, Secret: "s", Attribute: "Item_Nbr", WM: "101",
	}, &e); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized JSON body: status %d, want 413 (%+v)", status, e)
	}

	bigCSV := "Visit_Nbr,Item_Nbr\n"
	for i := 0; len(bigCSV) < 8192; i++ {
		bigCSV += fmt.Sprintf("%d,%d\n", i, i)
	}
	u := ts.URL + "/v1/verify/batch?schema=" + url.QueryEscape(testSchemaSpec) +
		"&records=00000000000000000000000000000000"
	if status := postRaw(t, u, contentTypeCSV, bigCSV, &e); status != http.StatusNotFound &&
		status != http.StatusRequestEntityTooLarge {
		t.Fatalf("streamed batch pre-scan: status %d (%+v)", status, e)
	}

	// With a real certificate stored, the streamed scan itself must trip
	// the limit mid-read and surface 413.
	id, err := st.Put(streamLimitRecord())
	if err != nil {
		t.Fatal(err)
	}
	u = ts.URL + "/v1/verify/batch?schema=" + url.QueryEscape(testSchemaSpec) + "&records=" + id
	if status := postRaw(t, u, contentTypeCSV, bigCSV, &e); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized streamed body: status %d, want 413 (%+v)", status, e)
	}
}

// streamLimitRecord is a minimal valid certificate for limit tests.
func streamLimitRecord() *core.Record {
	return &core.Record{
		Secret:    "limit-test",
		Attribute: "Item_Nbr",
		WM:        "1011",
		E:         30,
		Bandwidth: 64,
		Domain:    []string{"0", "1", "2", "3"},
	}
}

// TestListRecordsSortedAndLimited asserts the listing is sorted by ID and
// honours the limit query parameter.
func TestListRecordsSortedAndLimited(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := st.Put(streamLimitRecord()); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(New(st, Config{Workers: 1}).Handler())
	t.Cleanup(ts.Close)

	var listResp map[string][]string
	if s := getJSON(t, ts.URL+"/v1/records", &listResp); s != http.StatusOK {
		t.Fatalf("list status %d", s)
	}
	ids := listResp["records"]
	if len(ids) != 5 {
		t.Fatalf("listed %d, want 5", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("listing not sorted: %v", ids)
		}
	}
	if s := getJSON(t, ts.URL+"/v1/records?limit=2", &listResp); s != http.StatusOK {
		t.Fatalf("limited list status %d", s)
	}
	if got := listResp["records"]; len(got) != 2 || got[0] != ids[0] || got[1] != ids[1] {
		t.Fatalf("limit=2 returned %v, want first two of %v", got, ids[:2])
	}
	var e apiError
	if s := getJSON(t, ts.URL+"/v1/records?limit=-1", &e); s != http.StatusBadRequest {
		t.Fatalf("negative limit: status %d, want 400", s)
	}
}

// TestConcurrentVerifiesShareScannerCache hammers single and batch verify
// from concurrent clients against the same stored certificates — the
// pattern the prepared-scanner cache exists for. Run under -race in CI.
func TestConcurrentVerifiesShareScannerCache(t *testing.T) {
	ts := newTestServer(t)
	csv, domain := testCSV(t, 3000)
	owner, marked := watermarkFixture(t, ts, "cache-owner", csv, domain)
	other, _ := watermarkFixture(t, ts, "cache-other", csv, domain)

	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				var vResp VerifyResponse
				status := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
					ID: owner, Schema: testSchemaSpec, Data: marked,
				}, &vResp)
				if status != http.StatusOK || vResp.Match != 1 {
					errCh <- fmt.Errorf("g%d: verify status %d match %v", g, status, vResp.Match)
					return
				}
				u := ts.URL + "/v1/verify/batch?schema=" + url.QueryEscape(testSchemaSpec) +
					"&records=" + owner + "," + other
				var bResp BatchVerifyResponse
				if status := postRaw(t, u, contentTypeCSV, marked, &bResp); status != http.StatusOK {
					errCh <- fmt.Errorf("g%d: batch status %d", g, status)
					return
				}
				if len(bResp.Results) != 2 || bResp.Results[0].Match != 1 {
					errCh <- fmt.Errorf("g%d: batch results %+v", g, bResp.Results)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	var h struct {
		ScannerCache struct {
			Entries int    `json:"entries"`
			Hits    uint64 `json:"hits"`
		} `json:"scanner_cache"`
	}
	if s := getJSON(t, ts.URL+"/healthz", &h); s != http.StatusOK {
		t.Fatalf("healthz status %d", s)
	}
	if h.ScannerCache.Entries == 0 || h.ScannerCache.Hits == 0 {
		t.Fatalf("scanner cache never engaged: %+v", h.ScannerCache)
	}
}
