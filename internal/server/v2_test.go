package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/jobs"
	"repro/internal/server/store"
)

// newTestServerWithClose builds a server whose job subsystem is shut
// down on cleanup, plus the raw Server for white-box assertions.
func newTestServerWithClose(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, srv
}

func doJSON(t *testing.T, method, url string, body, out any) (status int, header http.Header) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s response (status %d): %v", method, url, resp.StatusCode, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// TestV2RoutesServeSameAPI sanity-checks that the /v2 spellings of the
// synchronous endpoints behave like /v1.
func TestV2RoutesServeSameAPI(t *testing.T) {
	ts, _ := newTestServerWithClose(t, Config{Workers: 2})
	csv, domain := testCSV(t, 4000)

	var wmResp api.WatermarkResponse
	status, _ := doJSON(t, http.MethodPost, ts.URL+"/v2/watermark", api.WatermarkRequest{
		Schema: testSchemaSpec, Data: csv, Secret: "v2-secret",
		Attribute: "Item_Nbr", WM: "1011001110", E: 30, Domain: domain,
	}, &wmResp)
	if status != http.StatusOK || wmResp.ID == "" {
		t.Fatalf("v2 watermark: status %d, %+v", status, wmResp)
	}

	var vResp api.VerifyResponse
	status, _ = doJSON(t, http.MethodPost, ts.URL+"/v2/verify", api.VerifyRequest{
		ID: wmResp.ID, Schema: testSchemaSpec, Data: wmResp.Data,
	}, &vResp)
	if status != http.StatusOK || vResp.Match != 1 || vResp.Verdict != api.VerdictPresent {
		t.Fatalf("v2 verify: status %d, %+v", status, vResp)
	}

	var bResp api.BatchVerifyResponse
	status, _ = doJSON(t, http.MethodPost, ts.URL+"/v2/verify/batch", api.BatchVerifyRequest{
		Records: []string{wmResp.ID}, Schema: testSchemaSpec, Data: wmResp.Data,
	}, &bResp)
	if status != http.StatusOK || len(bResp.Results) != 1 || bResp.Results[0].Match != 1 {
		t.Fatalf("v2 batch verify: status %d, %+v", status, bResp)
	}

	var info api.RecordInfo
	if status, _ = doJSON(t, http.MethodGet, ts.URL+"/v2/records/"+wmResp.ID, nil, &info); status != http.StatusOK {
		t.Fatalf("v2 record info: status %d", status)
	}
	var del api.DeleteResponse
	if status, _ = doJSON(t, http.MethodDelete, ts.URL+"/v2/records/"+wmResp.ID, nil, &del); status != http.StatusOK || del.Deleted != wmResp.ID {
		t.Fatalf("v2 delete: status %d, %+v", status, del)
	}
}

// TestUnmatchedRoutesWearEnvelope is the satellite fix: unknown methods
// on known paths reply 405 with an Allow header and the structured
// envelope; unknown paths reply 404 with code not_found — no empty
// bodies from the mux defaults.
func TestUnmatchedRoutesWearEnvelope(t *testing.T) {
	ts, _ := newTestServerWithClose(t, Config{Workers: 1})

	var e api.Error
	status, header := doJSON(t, http.MethodDelete, ts.URL+"/v1/watermark", nil, &e)
	if status != http.StatusMethodNotAllowed || e.Code != api.CodeMethodNotAllowed {
		t.Fatalf("DELETE on POST route: status %d, %+v", status, e)
	}
	if allow := header.Get("Allow"); !strings.Contains(allow, http.MethodPost) {
		t.Fatalf("Allow header %q does not list POST", allow)
	}

	status, header = doJSON(t, http.MethodPut, ts.URL+"/v1/records/00000000000000000000000000000000", nil, &e)
	if status != http.StatusMethodNotAllowed || e.Code != api.CodeMethodNotAllowed {
		t.Fatalf("PUT on records: status %d, %+v", status, e)
	}
	if allow := header.Get("Allow"); !strings.Contains(allow, http.MethodGet) || !strings.Contains(allow, http.MethodDelete) {
		t.Fatalf("Allow header %q does not list GET and DELETE", allow)
	}

	for _, path := range []string{"/v1/nope", "/v2/nope", "/totally/else"} {
		if status, _ = doJSON(t, http.MethodGet, ts.URL+path, nil, &e); status != http.StatusNotFound || e.Code != api.CodeNotFound {
			t.Fatalf("GET %s: status %d, %+v", path, status, e)
		}
	}
}

// TestErrorEnvelopeCarriesCode asserts ordinary handler failures carry
// machine-readable codes alongside the /v1-era message.
func TestErrorEnvelopeCarriesCode(t *testing.T) {
	ts, _ := newTestServerWithClose(t, Config{Workers: 1})
	var e api.Error
	status, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/watermark", api.WatermarkRequest{
		Schema: "bogus", Data: "x", Secret: "s", Attribute: "A", WM: "101",
	}, &e)
	if status != http.StatusBadRequest || e.Code != api.CodeInvalidArgument || e.Message == "" {
		t.Fatalf("bad request envelope: status %d, %+v", status, e)
	}
	status, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/records/00000000000000000000000000000000", nil, &e)
	if status != http.StatusNotFound || e.Code != api.CodeNotFound {
		t.Fatalf("not found envelope: status %d, %+v", status, e)
	}
}

// TestRecordPagination walks /v2/records with the body cursor and
// /v1/records with the X-Next-After header cursor.
func TestRecordPagination(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool, 7)
	for i := 0; i < 7; i++ {
		id, err := st.Put(streamLimitRecord())
		if err != nil {
			t.Fatal(err)
		}
		want[id] = true
	}
	srv := New(st, Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// /v2: cursor in the body.
	var got []string
	after := ""
	for page := 0; ; page++ {
		if page > 10 {
			t.Fatal("v2 pagination never terminated")
		}
		var list api.RecordList
		url := ts.URL + "/v2/records?limit=3"
		if after != "" {
			url += "&after=" + after
		}
		if status, _ := doJSON(t, http.MethodGet, url, nil, &list); status != http.StatusOK {
			t.Fatalf("v2 list: status %d", status)
		}
		got = append(got, list.Records...)
		if list.Next == "" {
			break
		}
		after = list.Next
	}
	if len(got) != len(want) {
		t.Fatalf("v2 walk returned %d ids, want %d", len(got), len(want))
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("v2 walk returned unknown id %s", id)
		}
	}

	// /v1: original body shape, cursor in the header.
	got = got[:0]
	after = ""
	for page := 0; ; page++ {
		if page > 10 {
			t.Fatal("v1 pagination never terminated")
		}
		var body map[string][]string
		url := ts.URL + "/v1/records?limit=3"
		if after != "" {
			url += "&after=" + after
		}
		status, header := doJSON(t, http.MethodGet, url, nil, &body)
		if status != http.StatusOK {
			t.Fatalf("v1 list: status %d", status)
		}
		got = append(got, body["records"]...)
		after = header.Get(api.NextAfterHeader)
		if after == "" {
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("v1 walk returned %d ids, want %d", len(got), len(want))
	}
}

// TestJobLifecycleOverHTTP drives a verify_batch job from submission to
// done over raw HTTP and reads the per-certificate reports off the job
// resource.
func TestJobLifecycleOverHTTP(t *testing.T) {
	ts, _ := newTestServerWithClose(t, Config{Workers: 2})
	csv, domain := testCSV(t, 4000)
	owner, marked := watermarkFixture(t, ts, "job-owner", csv, domain)
	other, _ := watermarkFixture(t, ts, "job-other", csv, domain)

	var job api.Job
	status, _ := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", api.JobRequest{
		Kind: api.JobKindVerifyBatch,
		VerifyBatch: &api.BatchVerifyRequest{
			Records: []string{owner, other},
			Schema:  testSchemaSpec,
			Data:    marked,
		},
	}, &job)
	if status != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit: status %d, %+v", status, job)
	}
	if job.State != api.JobQueued && job.State != api.JobRunning {
		t.Fatalf("fresh job state %s", job.State)
	}

	deadline := time.Now().Add(10 * time.Second)
	for !job.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(5 * time.Millisecond)
		if status, _ = doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+job.ID, nil, &job); status != http.StatusOK {
			t.Fatalf("poll: status %d", status)
		}
	}
	if job.State != api.JobDone || job.VerifyBatch == nil {
		t.Fatalf("final job: %+v", job)
	}
	if job.StartedAt == nil || job.FinishedAt == nil {
		t.Fatalf("done job missing timestamps: %+v", job)
	}
	if job.Progress != 4000 {
		t.Fatalf("done job progress %d, want 4000 (one tick per suspect tuple, not per certificate)", job.Progress)
	}
	if len(job.VerifyBatch.Results) != 2 ||
		job.VerifyBatch.Results[0].Match != 1 ||
		job.VerifyBatch.Results[0].Verdict != api.VerdictPresent ||
		job.VerifyBatch.Results[1].Verdict != api.VerdictAbsent {
		t.Fatalf("job results: %+v", job.VerifyBatch.Results)
	}

	// The finished job cannot be cancelled: 409 conflict.
	var e api.Error
	if status, _ = doJSON(t, http.MethodDelete, ts.URL+"/v2/jobs/"+job.ID, nil, &e); status != http.StatusConflict || e.Code != api.CodeConflict {
		t.Fatalf("cancel finished: status %d, %+v", status, e)
	}

	// And it shows up in the listing, newest first.
	var list api.JobList
	if status, _ = doJSON(t, http.MethodGet, ts.URL+"/v2/jobs", nil, &list); status != http.StatusOK || len(list.Jobs) != 1 {
		t.Fatalf("job list: status %d, %+v", status, list)
	}
}

// TestJobValidationAndNotFound covers the submit-side envelope errors.
func TestJobValidationAndNotFound(t *testing.T) {
	ts, _ := newTestServerWithClose(t, Config{Workers: 1})

	var e api.Error
	status, _ := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", api.JobRequest{Kind: "mystery"}, &e)
	if status != http.StatusBadRequest || e.Code != api.CodeInvalidArgument {
		t.Fatalf("unknown kind: status %d, %+v", status, e)
	}
	status, _ = doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", api.JobRequest{Kind: api.JobKindVerifyBatch}, &e)
	if status != http.StatusBadRequest || e.Code != api.CodeInvalidArgument {
		t.Fatalf("missing payload: status %d, %+v", status, e)
	}
	status, _ = doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/job-doesnotexist", nil, &e)
	if status != http.StatusNotFound || e.Code != api.CodeNotFound {
		t.Fatalf("unknown job: status %d, %+v", status, e)
	}

	// A failed job surfaces its typed error on the resource.
	var job api.Job
	status, _ = doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", api.JobRequest{
		Kind:        api.JobKindVerifyBatch,
		VerifyBatch: &api.BatchVerifyRequest{Schema: "", Data: ""},
	}, &job)
	if status != http.StatusAccepted {
		t.Fatalf("submit invalid payload: status %d (validation is async)", status)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !job.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(2 * time.Millisecond)
		doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+job.ID, nil, &job)
	}
	if job.State != api.JobFailed || job.Error == nil || job.Error.Code != api.CodeInvalidArgument {
		t.Fatalf("failed job: %+v, error %+v", job, job.Error)
	}
}

// TestHealthzReportsJobs asserts the liveness body now carries job-pool
// occupancy.
func TestHealthzReportsJobs(t *testing.T) {
	ts, _ := newTestServerWithClose(t, Config{Workers: 1, JobWorkers: 3})
	var h struct {
		Jobs struct {
			Workers int `json:"workers"`
		} `json:"jobs"`
	}
	if status, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &h); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if h.Jobs.Workers != 3 {
		t.Fatalf("healthz jobs: %+v", h)
	}
}

// TestQueueFullReplies429 saturates a single-worker, depth-1 queue with
// blocking jobs and asserts HTTP backpressure surfaces as 429 queue_full.
func TestQueueFullReplies429(t *testing.T) {
	ts, srv := newTestServerWithClose(t, Config{Workers: 1, JobWorkers: 1, JobQueueDepth: 1})
	csv, domain := testCSV(t, 3000)
	owner, marked := watermarkFixture(t, ts, "queue-owner", csv, domain)

	// Occupy the worker and the queue slot with jobs that park until the
	// server's Close cancels them, so the next HTTP submission must
	// bounce — deterministically, regardless of scan speed.
	started := make(chan struct{}, 1)
	block := func(ctx context.Context, _ *jobs.Progress) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if _, err := srv.jobs.Submit("blocker", block); err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds the first blocker
	if _, err := srv.jobs.Submit("blocker", block); err != nil {
		t.Fatal(err)
	}

	var e api.Error
	status, _ := doJSON(t, http.MethodPost, ts.URL+"/v2/jobs", api.JobRequest{
		Kind: api.JobKindVerifyBatch,
		VerifyBatch: &api.BatchVerifyRequest{
			Records: []string{owner}, Schema: testSchemaSpec, Data: marked,
		},
	}, &e)
	if status != http.StatusTooManyRequests || e.Code != api.CodeQueueFull {
		t.Fatalf("saturated submit: status %d, %+v (stats %+v)", status, e, srv.jobs.Stats())
	}
}
