// The /v2/jobs endpoints: corpus-scale audits and embeddings as async
// job resources on the bounded worker pool of internal/jobs. The
// submitting request returns 202 immediately; the work runs under the
// job's own context, which DELETE /v2/jobs/{id} (and server shutdown)
// cancels — and because the whole execution stack is context-threaded,
// cancellation stops the scan mid-pass.
package server

import (
	"context"
	"errors"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// The job outlives this request, but its work should stay
	// correlatable with the submission: re-attach the submitting
	// request's ID to the job context the manager hands the Func, so a
	// coordinator's shard fan-out carries it to every worker.
	reqID := obs.RequestID(r.Context())
	withReqID := func(ctx context.Context) context.Context {
		return obs.WithRequestID(ctx, reqID)
	}
	var fn jobs.Func
	switch req.Kind {
	case api.JobKindWatermark:
		if req.Watermark == nil {
			writeErr(w, api.Errorf(api.CodeInvalidArgument,
				"job kind %q needs a watermark payload", req.Kind))
			return
		}
		payload := *req.Watermark
		fn = func(ctx context.Context, p *jobs.Progress) (any, error) {
			resp, aerr := s.execWatermark(withReqID(ctx), payload, p.Add)
			if aerr != nil {
				return nil, aerr
			}
			return resp, nil
		}
	case api.JobKindVerifyBatch:
		if req.VerifyBatch == nil {
			writeErr(w, api.Errorf(api.CodeInvalidArgument,
				"job kind %q needs a verify_batch payload", req.Kind))
			return
		}
		payload := *req.VerifyBatch
		fn = func(ctx context.Context, p *jobs.Progress) (any, error) {
			resp, aerr := s.execVerifyBatch(withReqID(ctx), payload, p.Add)
			if aerr != nil {
				return nil, aerr
			}
			return resp, nil
		}
	default:
		writeErr(w, api.Errorf(api.CodeInvalidArgument,
			"unknown job kind %q (want %s or %s)", req.Kind,
			api.JobKindWatermark, api.JobKindVerifyBatch))
		return
	}

	// Capture the submitting request's span context so the job's queue
	// and run spans — and through them the whole distributed fan-out —
	// land in the same trace as the POST that started it.
	sc, _ := trace.FromContext(r.Context())
	snap, err := s.jobs.Submit(req.Kind, fn, jobs.WithSpanContext(sc))
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeErr(w, api.Errorf(api.CodeQueueFull,
			"job queue is full — back off and resubmit"))
		return
	case err != nil:
		writeErr(w, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	writeJSON(w, http.StatusAccepted, jobToAPI(snap))
}

// MaxLongPollWait caps how long one GET /v2/jobs/{id}?wait=<duration>
// request may park server-side; longer waits are truncated, and the cap
// is advertised in the X-Long-Poll-Max response header so clients size
// their waits to it.
const MaxLongPollWait = 30 * time.Second

// handleGetJob is GET /v2/jobs/{id}. Plain requests return the job
// resource immediately. With ?wait=<duration> the request long-polls:
// the server parks it until the job's state changes (queued→running
// counts), the job is already terminal, the wait elapses, or the client
// disconnects — then replies with the job as it stands. One parked
// request replaces a client-side polling loop.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var snap jobs.Snapshot
	var err error
	if waitRaw := r.URL.Query().Get("wait"); waitRaw != "" {
		wait, perr := time.ParseDuration(waitRaw)
		if perr != nil || wait < 0 {
			writeErr(w, api.Errorf(api.CodeInvalidArgument, "invalid wait %q", waitRaw))
			return
		}
		snap, err = s.jobs.WaitChange(r.Context(), id, min(wait, MaxLongPollWait))
	} else {
		snap, err = s.jobs.Get(id)
	}
	if errors.Is(err, jobs.ErrNotFound) {
		writeErr(w, api.Errorf(api.CodeNotFound, "%v: %s", err, id))
		return
	} else if err != nil {
		writeErr(w, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	w.Header().Set(api.LongPollMaxHeader, MaxLongPollWait.String())
	writeJSON(w, http.StatusOK, jobToAPI(snap))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	snaps := s.jobs.List()
	list := api.JobList{Jobs: make([]api.Job, len(snaps))}
	for i, snap := range snaps {
		list.Jobs[i] = jobToAPI(snap)
	}
	writeJSON(w, http.StatusOK, list)
}

// handleCancelJob is DELETE /v2/jobs/{id}. A queued job is cancelled
// outright; a running job has its context cancelled and reaches the
// cancelled state once its scan workers exit — poll GET /v2/jobs/{id}
// for the transition. Cancelling a finished job is a conflict.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	snap, err := s.jobs.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeErr(w, api.Errorf(api.CodeNotFound, "%v: %s", err, r.PathValue("id")))
		return
	case errors.Is(err, jobs.ErrFinished):
		writeErr(w, api.Errorf(api.CodeConflict,
			"job %s already finished (%s)", snap.ID, snap.State))
		return
	case err != nil:
		writeErr(w, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, jobToAPI(snap))
}

// jobToAPI renders a manager snapshot as the wire resource.
func jobToAPI(snap jobs.Snapshot) api.Job {
	j := api.Job{
		ID:        snap.ID,
		Kind:      snap.Kind,
		State:     api.JobState(snap.State),
		CreatedAt: snap.Created,
		Progress:  snap.Progress,
		TraceID:   snap.TraceID,
	}
	if !snap.Started.IsZero() {
		j.StartedAt = timePtr(snap.Started)
	}
	if !snap.Finished.IsZero() {
		j.FinishedAt = timePtr(snap.Finished)
	}
	switch snap.State {
	case jobs.StateCancelled:
		j.Error = api.Errorf(api.CodeCancelled, "job cancelled")
	case jobs.StateFailed:
		var aerr *api.Error
		if errors.As(snap.Err, &aerr) {
			j.Error = aerr
		} else {
			j.Error = api.Errorf(api.CodeInternal, "%v", snap.Err)
		}
	case jobs.StateDone:
		switch res := snap.Result.(type) {
		case *api.WatermarkResponse:
			j.Watermark = res
		case *api.BatchVerifyResponse:
			j.VerifyBatch = res
		}
	}
	return j
}

func timePtr(t time.Time) *time.Time { return &t }
