// The server's telemetry face: the per-server obs.Registry every layer
// registers into, the process-wide sampled families (scan engine, hash
// kernels, scanner cache, runtime), the GET /metrics exposition
// endpoint, and the optional /debug/pprof mount.
package server

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"repro/internal/keyhash"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// registerProcessMetrics wires the sampled families whose truth lives
// outside the registry: process counters in internal/pipeline and
// internal/keyhash (the scan hot path stays free of registry plumbing —
// it ticks package atomics and the registry reads them at scrape time),
// the scanner cache, and runtime vitals.
func (s *Server) registerProcessMetrics() {
	r := s.obs
	r.Sampled("wm_uptime_seconds", "Seconds since the server started.", obs.TypeGauge,
		func(emit obs.Emit) { emit(time.Since(s.started).Seconds()) })
	r.Sampled("wm_process_goroutines", "Goroutines in this process.", obs.TypeGauge,
		func(emit obs.Emit) { emit(float64(runtime.NumGoroutine())) })
	r.Sampled("wm_scan_tuples_total",
		"Tuples pushed through this process's scan and embed pipelines.", obs.TypeCounter,
		func(emit obs.Emit) { t, _ := pipeline.Stats(); emit(float64(t)) })
	r.Sampled("wm_scan_blocks_total",
		"Scan blocks (progress ticks) processed by this process's pipelines.", obs.TypeCounter,
		func(emit obs.Emit) { _, b := pipeline.Stats(); emit(float64(b)) })
	r.Sampled("wm_keyhash_kernel_calls_total",
		"Batched HashMany invocations, by hash-kernel backend.", obs.TypeCounter,
		func(emit obs.Emit) {
			for kind, kc := range keyhash.KernelStats() {
				emit(float64(kc.Calls), string(kind))
			}
		}, "kernel")
	r.Sampled("wm_keyhash_values_hashed_total",
		"Key values hashed, by hash-kernel backend.", obs.TypeCounter,
		func(emit obs.Emit) {
			for kind, kc := range keyhash.KernelStats() {
				emit(float64(kc.Values), string(kind))
			}
		}, "kernel")
	r.Sampled("wm_keyhash_calibration_hashes_per_sec",
		"Calibrated keyed-hash throughput of each available backend (startup micro-benchmark, cached for the process lifetime).", obs.TypeGauge,
		func(emit obs.Emit) {
			for kind, rate := range keyhash.Calibrate().HashesPerSec {
				emit(rate, string(kind))
			}
		}, "kernel")
	r.Sampled("wm_keyhash_selected_kernel",
		"1 for the hash backend scans on this server run on — the calibration winner, or the pinned -kernel override.", obs.TypeGauge,
		func(emit obs.Emit) {
			kind := s.cfg.HashKernel
			if kind == keyhash.KernelAuto {
				kind = keyhash.Calibrate().Kind
			}
			emit(1, string(kind))
		}, "kernel")
	if s.cache != nil {
		r.Sampled("wm_scanner_cache_entries",
			"Prepared certificates held by the scanner cache.", obs.TypeGauge,
			func(emit obs.Emit) { emit(float64(s.cache.Stats().Entries)) })
		r.Sampled("wm_scanner_cache_hits_total",
			"Scanner-cache lookups served from cache.", obs.TypeCounter,
			func(emit obs.Emit) { emit(float64(s.cache.Stats().Hits)) })
		r.Sampled("wm_scanner_cache_misses_total",
			"Scanner-cache lookups that derived fresh state.", obs.TypeCounter,
			func(emit obs.Emit) { emit(float64(s.cache.Stats().Misses)) })
	}
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.WritePrometheus(w) //nolint:errcheck // a dropped scrape has no one to tell
}

// mountPprof exposes net/http/pprof under /debug/pprof/ on the server's
// own mux, so profiles ride the same listener (and middleware) as the
// API — gated behind wmserver -pprof because profiles expose internals.
func (s *Server) mountPprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// routeLabel maps a mux pattern to a bounded-cardinality metrics label.
func routeLabel(pattern string) string {
	if pattern == "" {
		return "unmatched"
	}
	return pattern
}
