package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/obs/trace"
	"repro/internal/server/store"
)

// TestDistributedTraceTree is the tracing acceptance test end-to-end: a
// distributed audit over a coordinator and two real worker servers (one
// of which dies on its first shard, forcing a retry) must produce, at
// GET /v2/jobs/{id}/trace, a single tree rooted at the submitting HTTP
// request whose spans — coordinator dispatches, worker-side server
// spans, shard executions with per-phase timings — all share one trace
// ID stitched across processes by traceparent propagation.
func TestDistributedTraceTree(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Config{
		Workers: 2,
		Trace:   trace.Options{SampleRatio: 1},
		Cluster: ClusterConfig{
			Coordinator: true,
			Cluster:     cluster.Config{ShardRows: 500},
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	csv, domain := testCSV(t, 4000)
	_, marked := watermarkFixture(t, ts, "trace-owner", csv, domain)

	newClusterWorker(t, srv, "tw0", 2, nil)
	// tw1 aborts its first shard at the transport — the coordinator must
	// record the failed dispatch and retry the shard elsewhere, and the
	// retried attempt must appear in the same trace.
	var scans atomic.Int64
	newClusterWorker(t, srv, "tw1", 2, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/v2/internal/scan") && scans.Add(1) == 1 {
				panic(http.ErrAbortHandler)
			}
			next.ServeHTTP(w, r)
		})
	})

	var job api.Job
	status := postJSON(t, ts.URL+"/v2/jobs", api.JobRequest{
		Kind: api.JobKindVerifyBatch,
		VerifyBatch: &api.BatchVerifyRequest{
			Schema: testSchemaSpec,
			Data:   marked,
		},
	}, &job)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %+v", status, job)
	}
	if len(job.TraceID) != 32 {
		t.Fatalf("job resource carries no trace ID: %+v", job)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !job.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(10 * time.Millisecond)
		resp, err := http.Get(ts.URL + "/v2/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if job.State != api.JobDone {
		t.Fatalf("job %s: %+v", job.State, job.Error)
	}
	if scans.Load() < 1 {
		t.Fatal("tw1 was never dispatched to — the retry path was not exercised")
	}

	resp, err := http.Get(ts.URL + "/v2/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var jt api.JobTrace
	if err := json.NewDecoder(resp.Body).Decode(&jt); err != nil {
		t.Fatal(err)
	}
	if jt.TraceID != job.TraceID {
		t.Fatalf("trace ID mismatch: tree %s, job %s", jt.TraceID, job.TraceID)
	}

	// One root: the submitting POST /v2/jobs server span.
	if len(jt.Roots) != 1 {
		t.Fatalf("assembled %d roots, want exactly 1 (full retention):\n%s", len(jt.Roots), dumpTrace(t, &jt))
	}
	root := jt.Roots[0]
	if root.Span.Name != "POST /v2/jobs" || root.Span.ParentID != "" {
		t.Fatalf("root is %q (parent %q), want the submitting request span", root.Span.Name, root.Span.ParentID)
	}

	// Every span shares the job's trace ID; index by name as we walk.
	byName := map[string][]*api.TraceNode{}
	count := 0
	var walk func(n *api.TraceNode)
	walk = func(n *api.TraceNode) {
		count++
		if n.Span.TraceID != job.TraceID {
			t.Errorf("span %s (%s) has trace ID %s, want %s", n.Span.SpanID, n.Span.Name, n.Span.TraceID, job.TraceID)
		}
		byName[n.Span.Name] = append(byName[n.Span.Name], n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	if count != jt.SpanCount {
		t.Errorf("tree holds %d spans but SpanCount = %d", count, jt.SpanCount)
	}
	for _, name := range []string{"job.queue", "job.run", "cluster.shard.dispatch", "shard.execute"} {
		if len(byName[name]) == 0 {
			t.Fatalf("no %q span in the tree:\n%s", name, dumpTrace(t, &jt))
		}
	}

	// The aborted dispatch: an errored attempt plus a successful retry of
	// the same shard at a higher attempt number.
	var failedShard string
	for _, n := range byName["cluster.shard.dispatch"] {
		if n.Span.Error != "" {
			failedShard = n.Span.Attrs["shard"]
		}
	}
	if failedShard == "" {
		t.Fatalf("no errored dispatch span — the aborted shard left no trace:\n%s", dumpTrace(t, &jt))
	}
	retried := false
	for _, n := range byName["cluster.shard.dispatch"] {
		if n.Span.Attrs["shard"] == failedShard && n.Span.Error == "" && n.Span.Attrs["attempt"] > "1" {
			retried = true
		}
	}
	if !retried {
		t.Fatalf("shard %s has no successful retry dispatch:\n%s", failedShard, dumpTrace(t, &jt))
	}

	// Worker-side execution: stitched under a dispatch span via the
	// remote server span, attributed to a worker node, and carrying the
	// pipeline's per-phase timings.
	var hashNs int64
	for _, n := range byName["shard.execute"] {
		if n.Span.Node != "tw0" && n.Span.Node != "tw1" {
			t.Errorf("shard.execute on node %q, want a worker ID", n.Span.Node)
		}
		for _, key := range []string{"ingest_ns", "hash_ns", "vote_ns", "merge_ns"} {
			v, err := strconv.ParseInt(n.Span.Attrs[key], 10, 64)
			if err != nil {
				t.Errorf("shard.execute missing phase attr %s: %v (attrs %v)", key, err, n.Span.Attrs)
			} else if key == "hash_ns" {
				hashNs += v
			}
		}
	}
	if hashNs <= 0 {
		t.Error("summed hash_ns is zero — the phase clocks never ran on the workers")
	}
	stitched := false
	for _, n := range byName["cluster.shard.dispatch"] {
		for _, c := range n.Children {
			if c.Span.Name == "POST /v2/internal/scan" && c.Span.Remote {
				stitched = true
			}
		}
	}
	if !stitched {
		t.Fatalf("no worker server span stitched under a dispatch span — traceparent did not propagate:\n%s", dumpTrace(t, &jt))
	}
}

// dumpTrace renders the assembled tree for failure messages.
func dumpTrace(t *testing.T, jt *api.JobTrace) string {
	t.Helper()
	var b strings.Builder
	var walk func(n *api.TraceNode, depth int)
	walk = func(n *api.TraceNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Span.Name)
		b.WriteString(" [" + n.Span.Node + "]")
		if n.Span.Error != "" {
			b.WriteString(" error=" + n.Span.Error)
		}
		b.WriteString("\n")
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range jt.Roots {
		walk(r, 0)
	}
	return b.String()
}
