// The tracing face of the server: the trace-assembly endpoints over the
// span recorder of internal/obs/trace, plus the runtime log-level
// endpoint — the request-scoped observability surfaces next to the
// aggregate /metrics.
//
//	GET /v2/jobs/{id}/trace       assembled cross-process span tree of a job
//	GET /v2/internal/trace/{id}   this process's retained spans of a trace
//	GET /debug/traces             flight recorder: slowest + errored requests
//	GET /debug/loglevel           active log level
//	PUT /debug/loglevel           change the log level at runtime
//
// A job trace is assembled coordinator-side: the local ring holds the
// submitting request's span, the job spans and the per-shard dispatch
// spans; each live worker is asked for its shard of the trace by ID
// over the internal trace route, and the pieces — which share one trace
// ID thanks to traceparent propagation on the shard RPCs — are stitched
// into a tree by parent-span ID. Rings are bounded, so assembly is
// best-effort: an evicted span re-roots its children, an unreachable
// worker contributes nothing, and the tree that comes back is whatever
// the cluster still remembers.
package server

import (
	"net/http"
	"sort"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// nodeName is this process's identity on trace spans: the worker ID (or
// advertised URL) on a cluster worker, the role name on a coordinator,
// "local" on a single node.
func (s *Server) nodeName() string {
	cc := s.cfg.Cluster
	switch {
	case s.coord != nil:
		return "coordinator"
	case cc.JoinURL != "" && cc.WorkerID != "":
		return cc.WorkerID
	case cc.JoinURL != "":
		return cc.AdvertiseURL
	default:
		return "local"
	}
}

// spanToAPI serializes one retained span, stamped with the retaining
// process's identity.
func spanToAPI(sd trace.SpanData, node string) api.TraceSpan {
	sp := api.TraceSpan{
		TraceID:    sd.TraceID.String(),
		SpanID:     sd.SpanID.String(),
		Remote:     sd.Remote,
		Name:       sd.Name,
		Node:       node,
		Start:      sd.Start,
		DurationNs: int64(sd.Duration),
		Error:      sd.Err,
	}
	if !sd.Parent.IsZero() {
		sp.ParentID = sd.Parent.String()
	}
	if len(sd.Attrs) > 0 {
		sp.Attrs = make(map[string]string, len(sd.Attrs))
		for _, a := range sd.Attrs {
			sp.Attrs[a.Key] = a.Value
		}
	}
	return sp
}

// localSpans serializes this process's retained spans of one trace.
func (s *Server) localSpans(tid trace.TraceID) []api.TraceSpan {
	node := s.nodeName()
	data := s.trace.TraceSpans(tid)
	spans := make([]api.TraceSpan, len(data))
	for i, sd := range data {
		spans[i] = spanToAPI(sd, node)
	}
	return spans
}

// handleInternalTrace is GET /v2/internal/trace/{id}: one process's
// shard of a trace, the route a coordinator assembles worker subtrees
// from. Served by every role, like the scan route.
func (s *Server) handleInternalTrace(w http.ResponseWriter, r *http.Request) {
	tid, ok := trace.ParseTraceID(r.PathValue("id"))
	if !ok {
		writeErr(w, api.Errorf(api.CodeInvalidArgument,
			"invalid trace id %q (want 32 hex chars)", r.PathValue("id")))
		return
	}
	spans := s.localSpans(tid)
	if spans == nil {
		spans = []api.TraceSpan{}
	}
	writeJSON(w, http.StatusOK, api.TraceSpanList{Spans: spans})
}

// handleJobTrace is GET /v2/jobs/{id}/trace: the job's span tree across
// every process that worked on it.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.jobs.Get(id)
	if err != nil {
		writeErr(w, api.Errorf(api.CodeNotFound, "%v: %s", err, id))
		return
	}
	tid, ok := trace.ParseTraceID(snap.TraceID)
	if !ok {
		writeErr(w, api.Errorf(api.CodeNotFound,
			"job %s has no recorded trace (submitted without tracing?)", id))
		return
	}
	spans := s.localSpans(tid)
	if s.coord != nil {
		for _, ws := range s.coord.Status().Workers {
			if ws.URL == "" {
				continue
			}
			remote, err := client.New(ws.URL).TraceSpans(r.Context(), snap.TraceID)
			if err != nil {
				continue // best-effort: a down worker's spans are simply absent
			}
			for _, sp := range remote {
				if sp.Node == "" || sp.Node == "local" {
					sp.Node = ws.ID
				}
				spans = append(spans, sp)
			}
		}
	}
	sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start.Before(spans[b].Start) })
	writeJSON(w, http.StatusOK, api.JobTrace{
		JobID:     id,
		TraceID:   snap.TraceID,
		SpanCount: len(spans),
		Roots:     assembleTrace(spans),
	})
}

// assembleTrace stitches a flat start-ordered span list into parent →
// child trees. A span whose parent is absent (evicted, unsampled, or on
// an unreachable process) becomes a root — the tree degrades instead of
// dropping spans.
func assembleTrace(spans []api.TraceSpan) []*api.TraceNode {
	nodes := make(map[string]*api.TraceNode, len(spans))
	uniq := make([]*api.TraceNode, 0, len(spans))
	for i := range spans {
		// First span wins a (theoretical) duplicate ID so the tree
		// cannot gain a cycle through a double-reported span.
		if _, dup := nodes[spans[i].SpanID]; dup {
			continue
		}
		n := &api.TraceNode{Span: spans[i]}
		nodes[spans[i].SpanID] = n
		uniq = append(uniq, n)
	}
	roots := []*api.TraceNode{}
	for _, n := range uniq {
		if p, ok := nodes[n.Span.ParentID]; ok && n.Span.ParentID != n.Span.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// handleFlight is GET /debug/traces: the flight recorder's retained
// root spans — errored requests newest first, then slowest successes.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	node := s.nodeName()
	data := s.trace.Flight()
	spans := make([]api.TraceSpan, len(data))
	for i, sd := range data {
		spans[i] = spanToAPI(sd, node)
	}
	writeJSON(w, http.StatusOK, api.FlightList{Spans: spans})
}

// handleGetLogLevel is GET /debug/loglevel. Only registered when the
// server was built over a *slog.LevelVar.
func (s *Server) handleGetLogLevel(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.LogLevelResponse{Level: obs.LevelString(s.cfg.LogLevel.Level())})
}

// handleSetLogLevel is PUT /debug/loglevel: flip the process's log
// level without a restart — drop to debug while chasing an incident,
// back to info after. The change itself is logged (at the new level's
// floor, Info) so the log stream records why its own density changed.
func (s *Server) handleSetLogLevel(w http.ResponseWriter, r *http.Request) {
	var req api.LogLevelRequest
	if !decodeBody(w, r, &req) {
		return
	}
	lvl, ok := obs.LookupLevel(req.Level)
	if !ok {
		writeErr(w, api.Errorf(api.CodeInvalidArgument,
			"unknown level %q (want debug, info, warn or error)", req.Level))
		return
	}
	prev := s.cfg.LogLevel.Level()
	s.cfg.LogLevel.Set(lvl)
	if s.cfg.Log != nil && prev != lvl {
		s.cfg.Log.Info("log level changed", "from", obs.LevelString(prev), "to", obs.LevelString(lvl))
	}
	writeJSON(w, http.StatusOK, api.LogLevelResponse{Level: obs.LevelString(lvl)})
}
