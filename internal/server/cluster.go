// The cluster face of the server: the /v2/internal/* routes workers and
// coordinators speak to each other, the audit-path fan-out that turns a
// verify_batch into a distributed scan, and the role wiring behind
// wmserver's -coordinator and -join flags. One binary plays any role —
// every server can execute shards (the worker half costs nothing to
// serve), a coordinator additionally accepts registrations and schedules,
// and a worker additionally heartbeats its coordinator.
package server

import (
	"context"
	"errors"
	"net/http"
	"strings"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/keyhash"
	"repro/internal/relation"
)

// ClusterConfig selects the server's distributed-audit role.
type ClusterConfig struct {
	// Coordinator accepts worker registrations and fans verify_batch
	// audits out across them.
	Coordinator bool
	// Cluster tunes coordinator scheduling (shard size, retry budget,
	// lease TTL). Ignored unless Coordinator is set.
	Cluster cluster.Config
	// JoinURL, when set, joins this server to the coordinator at that
	// base URL as a scan worker (started by Join, which cmd/wmserver's
	// run path calls once the listener is up).
	JoinURL string
	// AdvertiseURL is the base URL the coordinator reaches this worker
	// at. Required with JoinURL.
	AdvertiseURL string
	// WorkerID names this worker across re-registrations; empty defaults
	// to AdvertiseURL.
	WorkerID string
	// Capacity is how many shards this worker scans concurrently; <= 0
	// means 1.
	Capacity int
}

// Coordinator exposes the cluster coordinator, nil on non-coordinator
// servers — tests use it to reach the membership table directly.
func (s *Server) Coordinator() *cluster.Coordinator { return s.coord }

// Join starts the worker agent declared by Config.Cluster.JoinURL, if
// any. It is separate from New because a worker can only advertise a URL
// once its listener is bound; server.Run calls it right after. Calling
// it twice, or on a server with no JoinURL, is a no-op.
func (s *Server) Join() {
	cc := s.cfg.Cluster
	if cc.JoinURL == "" || s.agent != nil {
		return
	}
	capacity := cc.Capacity
	if capacity <= 0 {
		capacity = 1
	}
	opts := []cluster.AgentOption{cluster.WithAgentObs(s.obs)}
	if s.cfg.Log != nil {
		opts = append(opts, cluster.WithAgentLogger(s.cfg.Log))
	}
	// Advertise the hash backend this worker scans with and its
	// calibrated rate — the coordinator seeds shard-size autotuning with
	// them until it has observed real per-shard throughput. A pinned
	// -kernel advertises the pinned backend's measured rate.
	cal := keyhash.Calibrate()
	kind := s.cfg.HashKernel
	if kind == keyhash.KernelAuto {
		kind = cal.Kind
	}
	s.agent = cluster.StartAgent(cc.JoinURL, api.WorkerRegistration{
		ID:           cc.WorkerID,
		URL:          cc.AdvertiseURL,
		Capacity:     capacity,
		Kernel:       string(kind),
		HashesPerSec: cal.HashesPerSec[kind],
	}, opts...)
}

// handleRegisterWorker is POST /v2/internal/workers — the join and the
// heartbeat (registration is an idempotent lease refresh). Only a
// coordinator serves it; on other roles the route is simply not
// registered and falls through to the structured 404.
func (s *Server) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	var reg api.WorkerRegistration
	if !decodeBody(w, r, &reg) {
		return
	}
	if reg.URL == "" {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "worker registration needs a url"))
		return
	}
	writeJSON(w, http.StatusOK, s.coord.Register(reg))
}

// handleInternalScan is POST /v2/internal/scan: scan one row-range shard
// against the request's certificate set and return the partial tallies.
// Served by every role — the shard carries everything the scan needs, so
// even a coordinator can execute one (and a single binary can be pointed
// at itself in tests).
func (s *Server) handleInternalScan(w http.ResponseWriter, r *http.Request) {
	var req api.ShardScanRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Records) == 0 {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "shard scan needs at least one certificate"))
		return
	}
	resp, err := cluster.ExecuteShard(r.Context(), req, core.BatchOptions{
		Workers:    s.workersFor(req.Workers),
		Cache:      s.cache,
		HashKernel: s.cfg.HashKernel,
	})
	if err != nil {
		if aerr := ctxErr(err); aerr != nil {
			writeErr(w, aerr)
			return
		}
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "shard scan: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// clusterVerifyBatch is the distributed middle of execVerifyBatchScan:
// the same PrepareBatch/Reports bracket as the local path, with the scan
// fanned out across the cluster instead of run in-process. Bit-identical
// to the local scan by the tally-merge contract (see the equivalence
// tests); per-certificate prep failures are reported identically because
// they never leave the coordinator.
func (s *Server) clusterVerifyBatch(ctx context.Context, recs []*core.Record, src relation.RowReader, opts core.BatchOptions) ([]core.BatchReport, error) {
	prep := core.PrepareBatch(recs, src.Schema(), opts)
	if len(prep.Scanners()) == 0 {
		return prep.Reports(nil), nil
	}
	tallies, err := s.coord.ScanShards(ctx, src, prep.Scanners(), cluster.ScanJob{
		Records:   prep.Records(),
		Schema:    relation.SchemaSpec(src.Schema()),
		BlockRows: opts.BlockSize,
		Workers:   opts.Workers,
		Progress:  opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	return prep.Reports(tallies), nil
}

// clusterErr classifies a failed distributed scan: cancellation and
// suspect-data problems keep the codes the local path would use, while
// cluster-side failures (no live workers, a shard out of retries) are
// the server's problem — internal, retryable — not the caller's.
func clusterErr(err error) *api.Error {
	if aerr := ctxErr(err); aerr != nil {
		return aerr
	}
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		// A tripped body limit surfaces through the shard reader too;
		// keep the local path's 413 so clients shrink and retry.
		return api.Errorf(api.CodePayloadTooLarge,
			"request body exceeds %d bytes", maxErr.Limit)
	}
	if errors.Is(err, cluster.ErrNoWorkers) || strings.HasPrefix(err.Error(), "cluster:") {
		return api.Errorf(api.CodeInternal, "distributed audit: %v", err)
	}
	return api.Errorf(api.CodeInvalidArgument, "suspect data: %v", err)
}

// clusterStatus renders this server's role for /healthz.
func (s *Server) clusterStatus() api.ClusterStatus {
	switch {
	case s.coord != nil:
		return s.coord.Status()
	case s.cfg.Cluster.JoinURL != "":
		st := api.ClusterStatus{Role: api.RoleWorker, Coordinator: s.cfg.Cluster.JoinURL}
		if s.agent != nil {
			if err := s.agent.LastError(); err != nil {
				st.HeartbeatError = err.Error()
			}
		}
		return st
	default:
		return api.ClusterStatus{Role: api.RoleSingle}
	}
}
