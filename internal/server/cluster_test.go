package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/server/store"
)

// newClusterCoordinator spins a coordinator-role server (small shards so
// multi-worker audits really fan out) and returns it with its base URL.
func newClusterCoordinator(t *testing.T, shardRows int) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Config{
		Workers: 2,
		Cluster: ClusterConfig{
			Coordinator: true,
			Cluster:     cluster.Config{ShardRows: shardRows},
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// newClusterWorker spins a plain server (certificates travel in shard
// requests — a worker needs no catalog) behind an optional middleware
// for fault injection, and registers it with the coordinator.
func newClusterWorker(t *testing.T, coord *Server, id string, capacity int, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Config{Workers: 2})
	h := srv.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	coord.Coordinator().Register(api.WorkerRegistration{ID: id, URL: ts.URL, Capacity: capacity})
	return ts
}

// rawBody POSTs a streamed CSV body and returns the raw response bytes —
// the unit of the bit-identical acceptance checks.
func rawBody(t *testing.T, rawURL, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(rawURL, contentTypeCSV, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestClusterAuditEquivalence is the acceptance contract end-to-end over
// HTTP: the same verify_batch against the same coordinator produces a
// byte-identical response body whether the scan ran locally (no workers
// joined yet) or fanned out across 1, 2 or 4 workers — certificates
// resolved from the same store, shards scanned by other processes'
// servers, partial tallies merged in row order.
func TestClusterAuditEquivalence(t *testing.T) {
	srv, ts := newClusterCoordinator(t, 700)
	csv, domain := testCSV(t, 6000)
	watermarkFixture(t, ts, "cluster-owner", csv, domain)
	owner, marked := watermarkFixture(t, ts, "cluster-owner-2", csv, domain)

	u := ts.URL + "/v2/verify/batch?schema=" + url.QueryEscape(testSchemaSpec)

	// Reference: no live workers — the coordinator degrades to the local
	// single-node scan.
	status, want := rawBody(t, u, marked)
	if status != http.StatusOK {
		t.Fatalf("local reference status %d: %s", status, want)
	}
	var wantResp BatchVerifyResponse
	if err := json.Unmarshal(want, &wantResp); err != nil {
		t.Fatal(err)
	}
	sawPresent := false
	for _, res := range wantResp.Results {
		if res.ID == owner && res.Verdict == "present" {
			sawPresent = true
		}
	}
	if !sawPresent {
		t.Fatalf("reference audit did not detect the owner: %+v", wantResp)
	}

	total := 0
	for _, n := range []int{1, 2, 4} {
		for total < n {
			newClusterWorker(t, srv, "w"+string(rune('0'+total)), 2, nil)
			total++
		}
		if got := srv.Coordinator().LiveWorkers(); got != n {
			t.Fatalf("LiveWorkers = %d, want %d", got, n)
		}
		status, got := rawBody(t, u, marked)
		if status != http.StatusOK {
			t.Fatalf("%d-worker status %d: %s", n, status, got)
		}
		if string(got) != string(want) {
			t.Fatalf("%d-worker response diverged from single-node scan:\n got  %s\n want %s", n, got, want)
		}
	}
}

// TestClusterAuditSurvivesWorkerDeath kills one of two workers mid-audit
// — its connections abort at the transport after it has scanned one
// shard, exactly what a killed process looks like to the coordinator —
// and asserts the audit completes with a byte-identical report, the
// shards retried on the survivor, and the dead worker marked not live.
func TestClusterAuditSurvivesWorkerDeath(t *testing.T) {
	srv, ts := newClusterCoordinator(t, 400)
	csv, domain := testCSV(t, 6000)
	watermarkFixture(t, ts, "death-owner", csv, domain)
	_, marked := watermarkFixture(t, ts, "death-owner-2", csv, domain)
	u := ts.URL + "/v2/verify/batch?schema=" + url.QueryEscape(testSchemaSpec)

	status, want := rawBody(t, u, marked) // local reference, before workers join
	if status != http.StatusOK {
		t.Fatalf("local reference status %d", status)
	}

	newClusterWorker(t, srv, "survivor", 2, nil)
	var scans atomic.Int64
	newClusterWorker(t, srv, "victim", 2, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/v2/internal/scan") && scans.Add(1) > 1 {
				panic(http.ErrAbortHandler) // died after its first shard
			}
			next.ServeHTTP(w, r)
		})
	})

	status, got := rawBody(t, u, marked)
	if status != http.StatusOK {
		t.Fatalf("audit with dying worker: status %d: %s", status, got)
	}
	if string(got) != string(want) {
		t.Fatalf("worker death changed the audit report:\n got  %s\n want %s", got, want)
	}
	if scans.Load() < 2 {
		t.Fatal("the victim was never exercised past its first shard — nothing was killed mid-audit")
	}
	for _, w := range srv.Coordinator().Status().Workers {
		if w.ID == "victim" && w.Live {
			t.Fatal("victim still marked live after transport death")
		}
		if w.ID == "survivor" && !w.Live {
			t.Fatal("survivor lost its lease")
		}
	}
}

// TestClusterJobProgressAggregation runs the distributed audit as an
// async job: the verify_batch dispatches to the cluster and the job's
// progress counter aggregates completed shards across workers, landing
// exactly on the corpus size.
func TestClusterJobProgressAggregation(t *testing.T) {
	srv, ts := newClusterCoordinator(t, 500)
	csv, domain := testCSV(t, 4000)
	owner, marked := watermarkFixture(t, ts, "job-owner", csv, domain)
	newClusterWorker(t, srv, "w0", 2, nil)
	newClusterWorker(t, srv, "w1", 2, nil)

	var job api.Job
	status := postJSON(t, ts.URL+"/v2/jobs", api.JobRequest{
		Kind: api.JobKindVerifyBatch,
		VerifyBatch: &api.BatchVerifyRequest{
			Schema: testSchemaSpec,
			Data:   marked,
		},
	}, &job)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %+v", status, job)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !job.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(10 * time.Millisecond)
		resp, err := http.Get(ts.URL + "/v2/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if job.State != api.JobDone {
		t.Fatalf("job %s: %+v", job.State, job.Error)
	}
	if job.Progress != 4000 {
		t.Fatalf("aggregated progress = %d, want 4000", job.Progress)
	}
	found := false
	for _, res := range job.VerifyBatch.Results {
		if res.ID == owner {
			found = true
			if res.Verdict != "present" || res.Match != 1 {
				t.Fatalf("owner result: %+v", res)
			}
		}
	}
	if !found {
		t.Fatalf("owner missing from results: %+v", job.VerifyBatch)
	}
}

// TestClusterHealthzRoles checks /healthz's cluster block on all three
// roles: a coordinator reports live workers with heartbeat ages, a
// joined worker names its coordinator, a plain server says single.
func TestClusterHealthzRoles(t *testing.T) {
	srv, ts := newClusterCoordinator(t, 0)
	newClusterWorker(t, srv, "hw", 3, nil)

	var health struct {
		Cluster api.ClusterStatus `json:"cluster"`
	}
	getJSON := func(baseURL string) {
		t.Helper()
		resp, err := http.Get(baseURL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
	}
	getJSON(ts.URL)
	if health.Cluster.Role != api.RoleCoordinator || health.Cluster.LiveWorkers != 1 {
		t.Fatalf("coordinator healthz: %+v", health.Cluster)
	}
	if len(health.Cluster.Workers) != 1 || health.Cluster.Workers[0].ID != "hw" ||
		health.Cluster.Workers[0].LastHeartbeatAgeSeconds < 0 ||
		health.Cluster.Workers[0].LastHeartbeatAgeSeconds > 60 {
		t.Fatalf("coordinator worker entry: %+v", health.Cluster.Workers)
	}

	// A worker that joins THROUGH the agent (the -join path): its healthz
	// names the coordinator, and its heartbeats appear in the
	// coordinator's table.
	wst, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wsrv := New(wst, Config{Cluster: ClusterConfig{JoinURL: ts.URL, WorkerID: "agent-worker", Capacity: 2}})
	wts := httptest.NewServer(wsrv.Handler())
	defer func() { wts.Close(); wsrv.Close() }()
	wsrv.cfg.Cluster.AdvertiseURL = wts.URL
	wsrv.Join()

	getJSON(wts.URL)
	if health.Cluster.Role != api.RoleWorker || health.Cluster.Coordinator != ts.URL {
		t.Fatalf("worker healthz: %+v", health.Cluster)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Coordinator().LiveWorkers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("agent-joined worker never registered with the coordinator")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Plain single-node server.
	plain := newTestServer(t)
	getJSON(plain.URL)
	if health.Cluster.Role != api.RoleSingle {
		t.Fatalf("plain healthz: %+v", health.Cluster)
	}
}

// TestJobLongPollHandler pins the GET /v2/jobs/{id}?wait=… surface: the
// response advertises the long-poll cap, a wait on a finished job
// returns it immediately, and a malformed wait is invalid_argument.
func TestJobLongPollHandler(t *testing.T) {
	ts := newTestServer(t)
	csv, domain := testCSV(t, 2000)
	_, marked := watermarkFixture(t, ts, "lp-owner", csv, domain)

	var job api.Job
	status := postJSON(t, ts.URL+"/v2/jobs", api.JobRequest{
		Kind:        api.JobKindVerifyBatch,
		VerifyBatch: &api.BatchVerifyRequest{Schema: testSchemaSpec, Data: marked},
	}, &job)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}

	// Long-poll to terminal: one parked request per state change at most,
	// never the full wait once the job is done.
	deadline := time.Now().Add(30 * time.Second)
	for !job.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		resp, err := http.Get(ts.URL + "/v2/jobs/" + job.ID + "?wait=5s")
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get(api.LongPollMaxHeader); got != MaxLongPollWait.String() {
			t.Fatalf("%s = %q, want %q", api.LongPollMaxHeader, got, MaxLongPollWait)
		}
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if job.State != api.JobDone {
		t.Fatalf("job ended %s: %+v", job.State, job.Error)
	}

	// A wait on an already-terminal job returns without parking.
	start := time.Now()
	resp, err := http.Get(ts.URL + "/v2/jobs/" + job.ID + "?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("terminal long-poll parked for %v", elapsed)
	}

	var e apiError
	resp, err = http.Get(ts.URL + "/v2/jobs/" + job.ID + "?wait=bogus")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeInvalidArgument {
		t.Fatalf("bogus wait: status %d, code %s", resp.StatusCode, e.Code)
	}
}

// TestClusterErrClassification pins the error-code parity between the
// local and distributed audit paths: body-limit trips stay 413, cluster
// infrastructure failures are internal, malformed suspects stay 400.
func TestClusterErrClassification(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{&http.MaxBytesError{Limit: 64}, api.CodePayloadTooLarge},
		{cluster.ErrNoWorkers, api.CodeInternal},
		{fmt.Errorf("cluster: shard 3 failed on 3 workers, last error: x"), api.CodeInternal},
		{fmt.Errorf("relation: reading CSV row 7: wrong arity"), api.CodeInvalidArgument},
		{context.Canceled, api.CodeCancelled},
	}
	for _, tc := range cases {
		if got := clusterErr(tc.err).Code; got != tc.code {
			t.Errorf("clusterErr(%v).Code = %s, want %s", tc.err, got, tc.code)
		}
	}
}
