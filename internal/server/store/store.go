// Package store persists watermark certificates (core.Record) on disk for
// wmserver. Each record lives in its own JSON file named by a random
// 128-bit hex ID, sharded into 256 fan-out subdirectories keyed by the
// ID's first two hex digits so a catalog of hundreds of thousands of
// certificates never piles into one directory; writes go through a temp
// file and an atomic rename within the shard so a crash never leaves a
// half-written certificate, and a store-wide RWMutex makes the
// Put/Get/List/Delete surface safe for concurrent handlers. Open migrates
// stores written before sharding (flat files in the root) in place.
//
// Records contain the owner's secret — they are exactly as sensitive as
// the keys themselves — so files are created 0600 and directories 0700.
package store

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// ErrNotFound reports a lookup for an ID the store does not hold.
var ErrNotFound = errors.New("store: record not found")

// idPattern is the shape of valid record IDs; Get/Delete reject anything
// else before touching the filesystem, so IDs can never traverse paths.
var idPattern = regexp.MustCompile(`^[0-9a-f]{32}$`)

const recordExt = ".json"

// Store is a directory of certificate files.
type Store struct {
	dir string
	mu  sync.RWMutex
}

// Open creates the directory if needed, migrates any pre-sharding flat
// record files into their shards, and returns a store over it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir}
	if err := s.migrateFlat(); err != nil {
		return nil, err
	}
	return s, nil
}

// migrateFlat moves legacy root-level record files into their shard
// subdirectories. Renames stay on one filesystem, so each move is atomic
// and a crash mid-migration leaves every record readable (List and Get
// would still miss nothing: unmigrated files simply move on next Open).
func (s *Store) migrateFlat() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		id := strings.TrimSuffix(e.Name(), recordExt)
		if e.IsDir() || id == e.Name() || !idPattern.MatchString(id) {
			continue
		}
		if err := os.MkdirAll(s.shardDir(id), 0o700); err != nil {
			return fmt.Errorf("store: migrating %s: %w", id, err)
		}
		err := os.Rename(filepath.Join(s.dir, e.Name()), s.path(id))
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			// ErrNotExist means a concurrent Open on the same directory
			// migrated this record first; the migration is idempotent.
			return fmt.Errorf("store: migrating %s: %w", id, err)
		}
	}
	return nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// NewID returns a fresh random record ID.
func NewID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("store: generating id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Put persists a record under a fresh ID and returns the ID.
func (s *Store) Put(rec *core.Record) (string, error) {
	id, err := NewID()
	if err != nil {
		return "", err
	}
	data, err := rec.Save()
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(s.shardDir(id), 0o700); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	// The temp file lives inside the shard so the rename is atomic.
	tmp, err := os.CreateTemp(s.shardDir(id), "put-*")
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", fmt.Errorf("store: %w", err)
	}
	if err := tmp.Chmod(0o600); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, s.path(id)); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("store: %w", err)
	}
	return id, nil
}

// Get loads the record stored under id.
func (s *Store) Get(id string) (*core.Record, error) {
	if !idPattern.MatchString(id) {
		return nil, fmt.Errorf("%w: invalid id %q", ErrNotFound, id)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := os.ReadFile(s.path(id))
	if errors.Is(err, os.ErrNotExist) {
		// Legacy flat layout: a record dropped in behind Open's back.
		data, err = os.ReadFile(filepath.Join(s.dir, id+recordExt))
		if errors.Is(err, os.ErrNotExist) {
			// A concurrent Open may have migrated the flat file into its
			// shard between the two reads; check the shard once more.
			data, err = os.ReadFile(s.path(id))
		}
	}
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	rec, err := core.LoadRecord(data)
	if err != nil {
		return nil, fmt.Errorf("store: record %s: %w", id, err)
	}
	return rec, nil
}

// Delete removes the record stored under id.
func (s *Store) Delete(id string) error {
	if !idPattern.MatchString(id) {
		return fmt.Errorf("%w: invalid id %q", ErrNotFound, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.path(id))
	if errors.Is(err, os.ErrNotExist) {
		err = os.Remove(filepath.Join(s.dir, id+recordExt))
		if errors.Is(err, os.ErrNotExist) {
			// See Get: a concurrent Open may have just migrated the file.
			err = os.Remove(s.path(id))
		}
	}
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// shardPattern is the shape of shard subdirectory names.
var shardPattern = regexp.MustCompile(`^[0-9a-f]{2}$`)

// List returns the IDs of every stored record, sorted.
func (s *Store) List() ([]string, error) {
	ids, _, err := s.ListPage("", 0)
	return ids, err
}

// ListPage returns up to limit record IDs strictly after the cursor
// `after` in sorted order, plus the cursor for the next page (empty when
// the listing is exhausted). limit <= 0 means no bound. This is the
// primitive behind GET /records?limit=N&after=<id>: because record IDs
// shard by their first two hex digits, shards ARE lexical buckets — a
// page walk skips every shard before the cursor and stops as soon as the
// page fills, so walking a million-record store page by page never sorts
// the whole catalog per request.
func (s *Store) ListPage(after string, limit int) (ids []string, next string, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, "", fmt.Errorf("store: %w", err)
	}

	// Legacy flat files dropped in behind Open's back still list; group
	// them into their would-be shard buckets so the bucket walk below
	// stays in global ID order.
	flat := map[string][]string{}
	buckets := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			if shardPattern.MatchString(name) {
				buckets[name] = true
			}
			continue
		}
		id := strings.TrimSuffix(name, recordExt)
		if id == name || !idPattern.MatchString(id) {
			continue // temp files, strays
		}
		flat[id[:2]] = append(flat[id[:2]], id)
		buckets[id[:2]] = true
	}
	ordered := make([]string, 0, len(buckets))
	for b := range buckets {
		ordered = append(ordered, b)
	}
	sort.Strings(ordered)

	want := limit
	if want > 0 {
		want++ // one extra decides whether a next page exists
	}
	// The cursor is compared as an opaque string, so any value is safe —
	// but only a cursor with a full 2-hex prefix can skip whole shards.
	afterShard := ""
	if len(after) >= 2 {
		afterShard = after[:2]
	}
	for _, bucket := range ordered {
		if bucket < afterShard {
			continue // the whole shard precedes the cursor
		}
		page := append([]string(nil), flat[bucket]...)
		if _, statErr := os.Stat(filepath.Join(s.dir, bucket)); statErr == nil {
			sub, err := os.ReadDir(filepath.Join(s.dir, bucket))
			if err != nil {
				return nil, "", fmt.Errorf("store: %w", err)
			}
			for _, e := range sub {
				name := e.Name()
				id := strings.TrimSuffix(name, recordExt)
				if e.IsDir() || id == name || !idPattern.MatchString(id) {
					continue
				}
				page = append(page, id)
			}
		}
		sort.Strings(page)
		for _, id := range page {
			if after != "" && id <= after {
				continue
			}
			ids = append(ids, id)
		}
		if want > 0 && len(ids) >= want {
			break // later shards only hold larger IDs
		}
	}
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
		next = ids[limit-1]
	}
	return ids, next, nil
}

// shardDir returns the fan-out subdirectory a record ID lives in.
func (s *Store) shardDir(id string) string {
	return filepath.Join(s.dir, id[:2])
}

func (s *Store) path(id string) string {
	return filepath.Join(s.shardDir(id), id+recordExt)
}
