package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
)

func testRecord(wm string) *core.Record {
	return &core.Record{
		Secret:    "store-test-secret",
		Attribute: "Item_Nbr",
		WM:        wm,
		E:         60,
		Bandwidth: 128,
		Domain:    []string{"10", "11", "12"},
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("1011001110")
	id, err := s.Put(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Secret != rec.Secret || got.WM != rec.WM || got.E != rec.E ||
		got.Bandwidth != rec.Bandwidth || len(got.Domain) != len(rec.Domain) {
		t.Fatalf("round trip mangled record: put %+v, got %+v", rec, got)
	}
}

func TestGetUnknownAndInvalidIDs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{
		"00000000000000000000000000000000", // valid shape, absent
		"../../etc/passwd",                 // traversal attempt
		"short",
		"",
		"ZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZ",
	} {
		if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%q): %v, want ErrNotFound", id, err)
		}
	}
}

func TestListAndDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := s.Put(testRecord("101"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	listed, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 3 {
		t.Fatalf("listed %d records, want 3", len(listed))
	}
	if err := s.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted record still readable: %v", err)
	}
	if err := s.Delete(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	listed, err = s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 2 {
		t.Fatalf("listed %d records after delete, want 2", len(listed))
	}
}

// TestConcurrentAccess hammers the store from many goroutines; run with
// -race in CI.
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				id, err := s.Put(testRecord(fmt.Sprintf("10%d", g%10)))
				if err != nil {
					errCh <- err
					return
				}
				if _, err := s.Get(id); err != nil {
					errCh <- err
					return
				}
				if _, err := s.List(); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	ids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 64 {
		t.Fatalf("have %d records, want 64", len(ids))
	}
}

// TestShardedLayout asserts records land in their two-hex-digit fan-out
// subdirectory and List returns them sorted across shards.
func TestShardedLayout(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 16; i++ {
		id, err := s.Put(testRecord("1011"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if _, err := os.Stat(filepath.Join(dir, id[:2], id+recordExt)); err != nil {
			t.Fatalf("record %s not in its shard: %v", id, err)
		}
	}
	listed, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != len(ids) {
		t.Fatalf("listed %d, want %d", len(listed), len(ids))
	}
	if !sort.StringsAreSorted(listed) {
		t.Fatalf("List not sorted: %v", listed)
	}
	sort.Strings(ids)
	for i := range ids {
		if listed[i] != ids[i] {
			t.Fatalf("List mismatch at %d: %s != %s", i, listed[i], ids[i])
		}
	}
}

// TestOpenMigratesFlatStore lays out a pre-sharding store (flat files in
// the root, as PR 1 wrote them) and asserts Open moves every record into
// its shard with nothing lost.
func TestOpenMigratesFlatStore(t *testing.T) {
	dir := t.TempDir()
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := NewID()
		if err != nil {
			t.Fatal(err)
		}
		data, err := testRecord("1011").Save()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, id+recordExt), data, 0o600); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// A stray that must survive untouched.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("keep"), 0o600); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, err := os.Stat(filepath.Join(dir, id+recordExt)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("flat file %s not migrated: %v", id, err)
		}
		if _, err := s.Get(id); err != nil {
			t.Fatalf("migrated record %s unreadable: %v", id, err)
		}
	}
	listed, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != len(ids) {
		t.Fatalf("listed %d after migration, want %d", len(listed), len(ids))
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Fatalf("stray file disturbed: %v", err)
	}

	// A flat record dropped in behind Open's back still resolves.
	id, err := NewID()
	if err != nil {
		t.Fatal(err)
	}
	data, err := testRecord("1100").Save()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, id+recordExt), data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(id); err != nil {
		t.Fatalf("legacy fallback Get: %v", err)
	}
	if err := s.Delete(id); err != nil {
		t.Fatalf("legacy fallback Delete: %v", err)
	}
}

// TestListPageWalksWholeStore pages through a store with a cursor and
// asserts the concatenated pages equal the full sorted listing, with a
// mix of sharded and legacy flat records.
func TestListPageWalksWholeStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, 0, 23)
	for i := 0; i < 20; i++ {
		id, err := s.Put(testRecord("1011"))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, id)
	}
	// Legacy flat files dropped in behind Open's back must paginate too.
	for i := 0; i < 3; i++ {
		id, err := NewID()
		if err != nil {
			t.Fatal(err)
		}
		data, err := testRecord("1100").Save()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, id+recordExt), data, 0o600); err != nil {
			t.Fatal(err)
		}
		want = append(want, id)
	}
	sort.Strings(want)

	var got []string
	after := ""
	for page := 0; ; page++ {
		if page > 30 {
			t.Fatal("pagination never terminated")
		}
		ids, next, err := s.ListPage(after, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) > 4 {
			t.Fatalf("page of %d ids, limit 4", len(ids))
		}
		got = append(got, ids...)
		if next == "" {
			break
		}
		if next != ids[len(ids)-1] {
			t.Fatalf("next cursor %s != last id %s", next, ids[len(ids)-1])
		}
		after = next
	}
	if len(got) != len(want) {
		t.Fatalf("paged %d ids, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("page walk diverged at %d: %s != %s", i, got[i], want[i])
		}
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("page walk unsorted: %v", got)
	}

	// An exact-boundary page must not fabricate a next cursor.
	ids, next, err := s.ListPage(want[len(want)-2], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != want[len(want)-1] || next != "" {
		t.Fatalf("final page: ids=%v next=%q", ids, next)
	}
	// A cursor at the end yields an empty page.
	if ids, next, err = s.ListPage(want[len(want)-1], 5); err != nil || len(ids) != 0 || next != "" {
		t.Fatalf("past-the-end page: ids=%v next=%q err=%v", ids, next, err)
	}
}

// TestListPageShortCursor asserts arbitrary (attacker-supplied) cursors —
// shorter than a shard prefix, or garbage — page safely instead of
// panicking, since `after` arrives straight off a query parameter.
func TestListPageShortCursor(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 4; i++ {
		id, err := s.Put(testRecord("1011"))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, id)
	}
	sort.Strings(want)
	for _, after := range []string{"a", "0", "!", "zzz", "..", "0g"} {
		ids, _, err := s.ListPage(after, 10)
		if err != nil {
			t.Fatalf("after=%q: %v", after, err)
		}
		for _, id := range ids {
			if id <= after {
				t.Fatalf("after=%q returned id %s not past the cursor", after, id)
			}
		}
	}
	// A short cursor that precedes every hex ID returns everything.
	ids, _, err := s.ListPage("!", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(want) {
		t.Fatalf("cursor %q returned %d ids, want %d", "!", len(ids), len(want))
	}
}
