package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func testRecord(wm string) *core.Record {
	return &core.Record{
		Secret:    "store-test-secret",
		Attribute: "Item_Nbr",
		WM:        wm,
		E:         60,
		Bandwidth: 128,
		Domain:    []string{"10", "11", "12"},
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("1011001110")
	id, err := s.Put(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Secret != rec.Secret || got.WM != rec.WM || got.E != rec.E ||
		got.Bandwidth != rec.Bandwidth || len(got.Domain) != len(rec.Domain) {
		t.Fatalf("round trip mangled record: put %+v, got %+v", rec, got)
	}
}

func TestGetUnknownAndInvalidIDs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{
		"00000000000000000000000000000000", // valid shape, absent
		"../../etc/passwd",                 // traversal attempt
		"short",
		"",
		"ZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZ",
	} {
		if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%q): %v, want ErrNotFound", id, err)
		}
	}
}

func TestListAndDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := s.Put(testRecord("101"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	listed, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 3 {
		t.Fatalf("listed %d records, want 3", len(listed))
	}
	if err := s.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted record still readable: %v", err)
	}
	if err := s.Delete(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	listed, err = s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 2 {
		t.Fatalf("listed %d records after delete, want 2", len(listed))
	}
}

// TestConcurrentAccess hammers the store from many goroutines; run with
// -race in CI.
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				id, err := s.Put(testRecord(fmt.Sprintf("10%d", g%10)))
				if err != nil {
					errCh <- err
					return
				}
				if _, err := s.Get(id); err != nil {
					errCh <- err
					return
				}
				if _, err := s.List(); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	ids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 64 {
		t.Fatalf("have %d records, want 64", len(ids))
	}
}
