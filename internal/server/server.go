// Package server exposes the watermarking system as a JSON HTTP service —
// the corpus-scale front door the CLI cannot be: many embed/verify jobs
// running concurrently, each internally parallelized by the chunked
// worker pool of internal/pipeline, with certificates persisted in an
// on-disk record store.
//
// Endpoints:
//
//	POST   /v1/watermark     embed a watermark, persist the certificate
//	POST   /v1/verify        verify a suspect against a stored or inline certificate
//	GET    /v1/records       list stored certificate IDs
//	GET    /v1/records/{id}  inspect a certificate (secret redacted)
//	DELETE /v1/records/{id}  drop a certificate
//	GET    /healthz          liveness probe
//
// Relations travel inline in request/response bodies as CSV (default) or
// JSONL text plus the schema-spec grammar of internal/relation.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/server/store"
)

// DefaultMaxBodyBytes bounds request bodies (relations travel inline).
const DefaultMaxBodyBytes = 256 << 20 // 256 MiB

// Config parameterises a Server.
type Config struct {
	// Workers is the default per-request worker count for the pipeline;
	// <= 0 means runtime.NumCPU(). Requests may override it downward or
	// upward with their own "workers" field.
	Workers int
	// MaxBodyBytes caps request body size; <= 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Log, when non-nil, receives one line per request.
	Log *log.Logger
}

// Server handles the HTTP API. Create with New, serve via Handler.
type Server struct {
	store   *store.Store
	cfg     Config
	mux     *http.ServeMux
	started time.Time
}

// New builds a Server over an opened record store.
func New(st *store.Store, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{store: st, cfg: cfg, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/watermark", s.handleWatermark)
	s.mux.HandleFunc("POST /v1/verify", s.handleVerify)
	s.mux.HandleFunc("GET /v1/records", s.handleListRecords)
	s.mux.HandleFunc("GET /v1/records/{id}", s.handleGetRecord)
	s.mux.HandleFunc("DELETE /v1/records/{id}", s.handleDeleteRecord)
	return s
}

// Handler returns the root handler, with body limiting and logging.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		s.mux.ServeHTTP(w, r)
		if s.cfg.Log != nil {
			s.cfg.Log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start))
		}
	})
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing left to report
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON request body, distinguishing a size-limit
// rejection (413, the client can shrink and retry) from a malformed
// request (400, retrying is pointless). Returns false after replying.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", maxErr.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// decodeRelation parses an inline relation payload.
func decodeRelation(schemaSpec, format, data string) (*relation.Relation, *relation.Schema, error) {
	if schemaSpec == "" {
		return nil, nil, errors.New("missing schema")
	}
	if data == "" {
		return nil, nil, errors.New("missing data")
	}
	schema, err := relation.ParseSchemaSpec(schemaSpec)
	if err != nil {
		return nil, nil, err
	}
	var r *relation.Relation
	switch strings.ToLower(format) {
	case "", "csv":
		r, err = relation.ReadCSV(strings.NewReader(data), schema)
	case "jsonl":
		r, err = relation.ReadJSONL(strings.NewReader(data), schema)
	default:
		return nil, nil, fmt.Errorf("unknown format %q (want csv or jsonl)", format)
	}
	if err != nil {
		return nil, nil, err
	}
	return r, schema, nil
}

// encodeRelation renders a relation back into a payload string.
func encodeRelation(r *relation.Relation, format string) (string, error) {
	var b strings.Builder
	var err error
	switch strings.ToLower(format) {
	case "", "csv":
		err = relation.WriteCSV(&b, r)
	case "jsonl":
		err = relation.WriteJSONL(&b, r)
	default:
		err = fmt.Errorf("unknown format %q", format)
	}
	return b.String(), err
}

// workersFor resolves a request's worker override against the server
// default.
func (s *Server) workersFor(requested int) int {
	if requested > 0 {
		return requested
	}
	return s.cfg.Workers
}

// WatermarkRequest is the POST /v1/watermark body.
type WatermarkRequest struct {
	// Schema is the schema-spec string, e.g.
	// "Visit_Nbr:int!key, Item_Nbr:int:categorical".
	Schema string `json:"schema"`
	// Format of Data: "csv" (default) or "jsonl".
	Format string `json:"format,omitempty"`
	// Data is the relation payload.
	Data string `json:"data"`
	// Secret is the owner's master passphrase.
	Secret string `json:"secret"`
	// Attribute is the categorical attribute to watermark.
	Attribute string `json:"attribute"`
	// KeyAttr optionally overrides the key attribute.
	KeyAttr string `json:"key_attr,omitempty"`
	// WM is the watermark bit string.
	WM string `json:"wm"`
	// E is the fitness parameter (default 60).
	E uint64 `json:"e,omitempty"`
	// Domain optionally fixes the value catalog.
	Domain []string `json:"domain,omitempty"`
	// FrequencyChannel additionally embeds into the histogram.
	FrequencyChannel bool `json:"frequency_channel,omitempty"`
	// MaxAlterationFraction bounds total data change (0 = unlimited).
	// Forces a sequential pass — the quality budget is order-dependent.
	MaxAlterationFraction float64 `json:"max_alteration_fraction,omitempty"`
	// Workers overrides the server's pipeline worker count for this job.
	Workers int `json:"workers,omitempty"`
}

// WatermarkResponse is the POST /v1/watermark reply.
type WatermarkResponse struct {
	// ID is the stored certificate's identifier; pass it to /v1/verify.
	ID string `json:"id"`
	// Data is the watermarked relation in the request's format.
	Data string `json:"data"`
	// Tuples, Fit, Altered, Bandwidth summarize the embedding pass.
	Tuples         int     `json:"tuples"`
	Fit            int     `json:"fit"`
	Altered        int     `json:"altered"`
	AlterationRate float64 `json:"alteration_rate"`
	Bandwidth      int     `json:"bandwidth"`
	// FrequencyMoved counts tuples moved by the frequency channel.
	FrequencyMoved int `json:"frequency_moved,omitempty"`
}

func (s *Server) handleWatermark(w http.ResponseWriter, r *http.Request) {
	var req WatermarkRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rel, _, err := decodeRelation(req.Schema, req.Format, req.Data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "relation: %v", err)
		return
	}
	var dom *relation.Domain
	if len(req.Domain) > 0 {
		if dom, err = relation.NewDomain(req.Domain); err != nil {
			writeError(w, http.StatusBadRequest, "domain: %v", err)
			return
		}
	}
	rec, st, err := core.Watermark(rel, core.Spec{
		Secret:                req.Secret,
		Attribute:             req.Attribute,
		KeyAttr:               req.KeyAttr,
		WM:                    req.WM,
		E:                     req.E,
		Domain:                dom,
		WithFrequencyChannel:  req.FrequencyChannel,
		MaxAlterationFraction: req.MaxAlterationFraction,
		Workers:               s.workersFor(req.Workers),
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "watermark: %v", err)
		return
	}
	id, err := s.store.Put(rec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "persisting record: %v", err)
		return
	}
	data, err := encodeRelation(rel, req.Format)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding result: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, WatermarkResponse{
		ID:             id,
		Data:           data,
		Tuples:         st.Mark.Tuples,
		Fit:            st.Mark.Fit,
		Altered:        st.Mark.Altered,
		AlterationRate: st.Mark.AlterationRate(),
		Bandwidth:      st.Mark.Bandwidth,
		FrequencyMoved: st.FrequencyMoved,
	})
}

// VerifyRequest is the POST /v1/verify body. Exactly one of ID (a stored
// certificate) or Record (an inline certificate) must be set.
type VerifyRequest struct {
	ID     string       `json:"id,omitempty"`
	Record *core.Record `json:"record,omitempty"`
	// Schema/Format/Data carry the suspect relation, as in /v1/watermark.
	Schema  string `json:"schema"`
	Format  string `json:"format,omitempty"`
	Data    string `json:"data"`
	Workers int    `json:"workers,omitempty"`
}

// VerifyResponse is the POST /v1/verify reply.
type VerifyResponse struct {
	// Match is the fraction of watermark bits recovered; 1.0 is perfect.
	Match float64 `json:"match"`
	// Detected is the recovered bit string.
	Detected string `json:"detected"`
	// Verdict is "present", "partial" or "absent" at the wmtool
	// thresholds (>= 0.9, >= 0.7).
	Verdict string `json:"verdict"`
	// RemapRecovered notes a Section 4.5 inverse-mapping recovery.
	RemapRecovered bool `json:"remap_recovered,omitempty"`
	// FrequencyMatch is the secondary channel's agreement (-1 = unused).
	FrequencyMatch float64 `json:"frequency_match"`
	// FalsePositiveProb is the chance of a full match on unmarked data.
	FalsePositiveProb float64 `json:"false_positive_prob"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var rec *core.Record
	switch {
	case req.ID != "" && req.Record != nil:
		writeError(w, http.StatusBadRequest, "pass either id or record, not both")
		return
	case req.ID != "":
		var err error
		rec, err = s.store.Get(req.ID)
		if errors.Is(err, store.ErrNotFound) {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		} else if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	case req.Record != nil:
		rec = req.Record
	default:
		writeError(w, http.StatusBadRequest, "missing certificate: pass id or record")
		return
	}
	suspect, _, err := decodeRelation(req.Schema, req.Format, req.Data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "relation: %v", err)
		return
	}
	rep, err := rec.VerifyParallel(suspect, s.workersFor(req.Workers))
	if err != nil {
		writeError(w, http.StatusBadRequest, "verify: %v", err)
		return
	}
	verdict := "absent"
	switch {
	case rep.Match >= 0.9:
		verdict = "present"
	case rep.Match >= 0.7:
		verdict = "partial"
	}
	writeJSON(w, http.StatusOK, VerifyResponse{
		Match:             rep.Match,
		Detected:          rep.Detected,
		Verdict:           verdict,
		RemapRecovered:    rep.RemapRecovered,
		FrequencyMatch:    rep.FrequencyMatch,
		FalsePositiveProb: analysis.FalsePositiveProb(len(rec.WM)),
	})
}

// RecordInfo is the GET /v1/records/{id} reply: the certificate's public
// shape with the secret redacted — holders of the store's directory can
// read the raw files, but the API never echoes secrets.
type RecordInfo struct {
	ID                  string `json:"id"`
	Attribute           string `json:"attribute"`
	KeyAttr             string `json:"key_attr,omitempty"`
	WMBits              int    `json:"wm_bits"`
	E                   uint64 `json:"e"`
	Bandwidth           int    `json:"bandwidth"`
	DomainSize          int    `json:"domain_size"`
	HasFrequencyChannel bool   `json:"has_frequency_channel"`
}

func (s *Server) handleGetRecord(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, err := s.store.Get(id)
	if errors.Is(err, store.ErrNotFound) {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	} else if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, RecordInfo{
		ID:                  id,
		Attribute:           rec.Attribute,
		KeyAttr:             rec.KeyAttr,
		WMBits:              len(rec.WM),
		E:                   rec.E,
		Bandwidth:           rec.Bandwidth,
		DomainSize:          len(rec.Domain),
		HasFrequencyChannel: rec.HasFrequencyChannel,
	})
}

func (s *Server) handleDeleteRecord(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	err := s.store.Delete(id)
	if errors.Is(err, store.ErrNotFound) {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	} else if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleListRecords(w http.ResponseWriter, r *http.Request) {
	ids, err := s.store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, map[string][]string{"records": ids})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": int(time.Since(s.started).Seconds()),
		"workers":        s.cfg.Workers,
	})
}
