// Package server exposes the watermarking system as a JSON HTTP service —
// the corpus-scale front door the CLI cannot be: many embed/verify jobs
// running concurrently, each internally parallelized by the chunked
// worker pool of internal/pipeline, with certificates persisted in an
// on-disk record store.
//
// Endpoints:
//
//	POST   /v1/watermark     embed a watermark, persist the certificate
//	POST   /v1/verify        verify a suspect against a stored or inline certificate
//	POST   /v1/verify/batch  verify one suspect against many stored certificates in ONE scan
//	GET    /v1/records       list stored certificate IDs (sorted; ?limit=N)
//	GET    /v1/records/{id}  inspect a certificate (secret redacted)
//	DELETE /v1/records/{id}  drop a certificate
//	GET    /healthz          liveness probe
//
// Relations travel either inline in JSON request/response bodies as CSV
// (default) or JSONL text plus the schema-spec grammar of
// internal/relation, or — on the verify endpoints — as RAW streamed
// request bodies: POST with Content-Type text/csv or
// application/x-ndjson and the rows flow straight from the socket into
// the detection pipeline tuple-at-a-time, never materialized in a request
// struct (parameters travel as query strings). Prepared certificate
// state is cached across requests (core.ScannerCache), so auditing many
// suspects against a registered catalog re-derives keys and domains once.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/server/store"
)

// DefaultMaxBodyBytes bounds request bodies (relations travel inline).
const DefaultMaxBodyBytes = 256 << 20 // 256 MiB

// Config parameterises a Server.
type Config struct {
	// Workers is the default per-request worker count for the pipeline;
	// <= 0 means runtime.NumCPU(). Requests may override it downward or
	// upward with their own "workers" field.
	Workers int
	// MaxBodyBytes caps request body size; <= 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// ScannerCacheEntries bounds the prepared-certificate cache; 0 means
	// core.DefaultScannerCacheEntries, negative disables the cache.
	ScannerCacheEntries int
	// Log, when non-nil, receives one line per request.
	Log *log.Logger
}

// Server handles the HTTP API. Create with New, serve via Handler.
type Server struct {
	store   *store.Store
	cfg     Config
	cache   *core.ScannerCache
	mux     *http.ServeMux
	started time.Time
}

// New builds a Server over an opened record store.
func New(st *store.Store, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{store: st, cfg: cfg, mux: http.NewServeMux(), started: time.Now()}
	if cfg.ScannerCacheEntries >= 0 {
		s.cache = core.NewScannerCache(cfg.ScannerCacheEntries)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/watermark", s.handleWatermark)
	s.mux.HandleFunc("POST /v1/verify", s.handleVerify)
	s.mux.HandleFunc("POST /v1/verify/batch", s.handleVerifyBatch)
	s.mux.HandleFunc("GET /v1/records", s.handleListRecords)
	s.mux.HandleFunc("GET /v1/records/{id}", s.handleGetRecord)
	s.mux.HandleFunc("DELETE /v1/records/{id}", s.handleDeleteRecord)
	return s
}

// Handler returns the root handler, with body limiting and logging.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		s.mux.ServeHTTP(w, r)
		if s.cfg.Log != nil {
			s.cfg.Log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start))
		}
	})
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing left to report
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON request body, distinguishing a size-limit
// rejection (413, the client can shrink and retry) from a malformed
// request (400, retrying is pointless). Returns false after replying.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", maxErr.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// decodeRelation parses an inline relation payload.
func decodeRelation(schemaSpec, format, data string) (*relation.Relation, *relation.Schema, error) {
	if schemaSpec == "" {
		return nil, nil, errors.New("missing schema")
	}
	if data == "" {
		return nil, nil, errors.New("missing data")
	}
	schema, err := relation.ParseSchemaSpec(schemaSpec)
	if err != nil {
		return nil, nil, err
	}
	var r *relation.Relation
	switch strings.ToLower(format) {
	case "", "csv":
		r, err = relation.ReadCSV(strings.NewReader(data), schema)
	case "jsonl":
		r, err = relation.ReadJSONL(strings.NewReader(data), schema)
	default:
		return nil, nil, fmt.Errorf("unknown format %q (want csv or jsonl)", format)
	}
	if err != nil {
		return nil, nil, err
	}
	return r, schema, nil
}

// Streamable request content types: rows flow straight from the body
// into the pipeline.
const (
	contentTypeCSV    = "text/csv"
	contentTypeNDJSON = "application/x-ndjson"
)

// requestMediaType extracts the bare media type of a request body.
func requestMediaType(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return ""
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return ct
	}
	return mt
}

func isStreamType(mt string) bool {
	return mt == contentTypeCSV || mt == contentTypeNDJSON
}

// rowReaderForFormat builds a streaming row reader for an inline payload
// format name ("csv" or "jsonl").
func rowReaderForFormat(format string, rd io.Reader, schema *relation.Schema) (relation.RowReader, error) {
	switch strings.ToLower(format) {
	case "", "csv":
		return relation.NewCSVRowReader(rd, schema)
	case "jsonl":
		return relation.NewJSONLRowReader(rd, schema), nil
	default:
		return nil, fmt.Errorf("unknown format %q (want csv or jsonl)", format)
	}
}

// streamRowReader builds a row reader over a raw streamed request body.
func streamRowReader(body io.Reader, mt, schemaSpec string) (relation.RowReader, error) {
	if schemaSpec == "" {
		return nil, errors.New("missing schema query parameter")
	}
	schema, err := relation.ParseSchemaSpec(schemaSpec)
	if err != nil {
		return nil, err
	}
	switch mt {
	case contentTypeCSV:
		return rowReaderForFormat("csv", body, schema)
	case contentTypeNDJSON:
		return rowReaderForFormat("jsonl", body, schema)
	default:
		return nil, fmt.Errorf("unsupported content type %q", mt)
	}
}

// writeScanError reports a failed streaming scan: a tripped body limit is
// 413 (shrink and retry), anything else is a malformed suspect (400).
func writeScanError(w http.ResponseWriter, err error) {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		writeError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds %d bytes", maxErr.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "suspect data: %v", err)
}

// encodeRelation renders a relation back into a payload string.
func encodeRelation(r *relation.Relation, format string) (string, error) {
	var b strings.Builder
	var err error
	switch strings.ToLower(format) {
	case "", "csv":
		err = relation.WriteCSV(&b, r)
	case "jsonl":
		err = relation.WriteJSONL(&b, r)
	default:
		err = fmt.Errorf("unknown format %q", format)
	}
	return b.String(), err
}

// workersFor resolves a request's worker override against the server
// default.
func (s *Server) workersFor(requested int) int {
	if requested > 0 {
		return requested
	}
	return s.cfg.Workers
}

// WatermarkRequest is the POST /v1/watermark body.
type WatermarkRequest struct {
	// Schema is the schema-spec string, e.g.
	// "Visit_Nbr:int!key, Item_Nbr:int:categorical".
	Schema string `json:"schema"`
	// Format of Data: "csv" (default) or "jsonl".
	Format string `json:"format,omitempty"`
	// Data is the relation payload.
	Data string `json:"data"`
	// Secret is the owner's master passphrase.
	Secret string `json:"secret"`
	// Attribute is the categorical attribute to watermark.
	Attribute string `json:"attribute"`
	// KeyAttr optionally overrides the key attribute.
	KeyAttr string `json:"key_attr,omitempty"`
	// WM is the watermark bit string.
	WM string `json:"wm"`
	// E is the fitness parameter (default 60).
	E uint64 `json:"e,omitempty"`
	// Domain optionally fixes the value catalog.
	Domain []string `json:"domain,omitempty"`
	// FrequencyChannel additionally embeds into the histogram.
	FrequencyChannel bool `json:"frequency_channel,omitempty"`
	// MaxAlterationFraction bounds total data change (0 = unlimited).
	// Forces a sequential pass — the quality budget is order-dependent.
	MaxAlterationFraction float64 `json:"max_alteration_fraction,omitempty"`
	// Workers overrides the server's pipeline worker count for this job.
	Workers int `json:"workers,omitempty"`
}

// WatermarkResponse is the POST /v1/watermark reply.
type WatermarkResponse struct {
	// ID is the stored certificate's identifier; pass it to /v1/verify.
	ID string `json:"id"`
	// Data is the watermarked relation in the request's format.
	Data string `json:"data"`
	// Tuples, Fit, Altered, Bandwidth summarize the embedding pass.
	Tuples         int     `json:"tuples"`
	Fit            int     `json:"fit"`
	Altered        int     `json:"altered"`
	AlterationRate float64 `json:"alteration_rate"`
	Bandwidth      int     `json:"bandwidth"`
	// FrequencyMoved counts tuples moved by the frequency channel.
	FrequencyMoved int `json:"frequency_moved,omitempty"`
}

func (s *Server) handleWatermark(w http.ResponseWriter, r *http.Request) {
	var req WatermarkRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rel, _, err := decodeRelation(req.Schema, req.Format, req.Data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "relation: %v", err)
		return
	}
	var dom *relation.Domain
	if len(req.Domain) > 0 {
		if dom, err = relation.NewDomain(req.Domain); err != nil {
			writeError(w, http.StatusBadRequest, "domain: %v", err)
			return
		}
	}
	rec, st, err := core.Watermark(rel, core.Spec{
		Secret:                req.Secret,
		Attribute:             req.Attribute,
		KeyAttr:               req.KeyAttr,
		WM:                    req.WM,
		E:                     req.E,
		Domain:                dom,
		WithFrequencyChannel:  req.FrequencyChannel,
		MaxAlterationFraction: req.MaxAlterationFraction,
		Workers:               s.workersFor(req.Workers),
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "watermark: %v", err)
		return
	}
	id, err := s.store.Put(rec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "persisting record: %v", err)
		return
	}
	data, err := encodeRelation(rel, req.Format)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding result: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, WatermarkResponse{
		ID:             id,
		Data:           data,
		Tuples:         st.Mark.Tuples,
		Fit:            st.Mark.Fit,
		Altered:        st.Mark.Altered,
		AlterationRate: st.Mark.AlterationRate(),
		Bandwidth:      st.Mark.Bandwidth,
		FrequencyMoved: st.FrequencyMoved,
	})
}

// VerifyRequest is the POST /v1/verify body. Exactly one of ID (a stored
// certificate) or Record (an inline certificate) must be set.
type VerifyRequest struct {
	ID     string       `json:"id,omitempty"`
	Record *core.Record `json:"record,omitempty"`
	// Schema/Format/Data carry the suspect relation, as in /v1/watermark.
	Schema  string `json:"schema"`
	Format  string `json:"format,omitempty"`
	Data    string `json:"data"`
	Workers int    `json:"workers,omitempty"`
}

// VerifyResponse is the POST /v1/verify reply.
type VerifyResponse struct {
	// Match is the fraction of watermark bits recovered; 1.0 is perfect.
	Match float64 `json:"match"`
	// Detected is the recovered bit string.
	Detected string `json:"detected"`
	// Verdict is "present", "partial" or "absent" at the wmtool
	// thresholds (>= 0.9, >= 0.7).
	Verdict string `json:"verdict"`
	// RemapRecovered notes a Section 4.5 inverse-mapping recovery.
	RemapRecovered bool `json:"remap_recovered,omitempty"`
	// FrequencyMatch is the secondary channel's agreement (-1 = unused).
	FrequencyMatch float64 `json:"frequency_match"`
	// FalsePositiveProb is the chance of a full match on unmarked data.
	FalsePositiveProb float64 `json:"false_positive_prob"`
}

// verdictFor maps a bit-agreement fraction onto the API verdict scale,
// at the shared core thresholds.
func verdictFor(match float64) string {
	switch {
	case match >= core.PresentThreshold:
		return "present"
	case match >= core.PartialThreshold:
		return "partial"
	default:
		return "absent"
	}
}

// loadStoredRecord fetches a certificate by ID, replying on failure.
func (s *Server) loadStoredRecord(w http.ResponseWriter, id string) (*core.Record, bool) {
	rec, err := s.store.Get(id)
	if errors.Is(err, store.ErrNotFound) {
		writeError(w, http.StatusNotFound, "%v", err)
		return nil, false
	} else if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return nil, false
	}
	return rec, true
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if mt := requestMediaType(r); isStreamType(mt) {
		s.handleVerifyStream(w, r, mt)
		return
	}
	var req VerifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var rec *core.Record
	switch {
	case req.ID != "" && req.Record != nil:
		writeError(w, http.StatusBadRequest, "pass either id or record, not both")
		return
	case req.ID != "":
		var ok bool
		if rec, ok = s.loadStoredRecord(w, req.ID); !ok {
			return
		}
	case req.Record != nil:
		rec = req.Record
	default:
		writeError(w, http.StatusBadRequest, "missing certificate: pass id or record")
		return
	}
	suspect, _, err := decodeRelation(req.Schema, req.Format, req.Data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "relation: %v", err)
		return
	}
	rep, err := rec.VerifyWith(suspect, core.VerifyOptions{
		Workers: s.workersFor(req.Workers),
		Cache:   s.cache,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "verify: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, VerifyResponse{
		Match:             rep.Match,
		Detected:          rep.Detected,
		Verdict:           verdictFor(rep.Match),
		RemapRecovered:    rep.RemapRecovered,
		FrequencyMatch:    rep.FrequencyMatch,
		FalsePositiveProb: analysis.FalsePositiveProb(len(rec.WM)),
	})
}

// handleVerifyStream serves POST /v1/verify with a raw text/csv or
// application/x-ndjson body: the suspect rows flow from the socket into
// the detection pipeline without ever being materialized server-side.
// Parameters travel as query strings — id (a stored certificate,
// required), schema (the schema spec), workers. Only the primary channel
// is scored: the stream is consumed in one pass, so the remap-recovery
// and frequency-channel rescans of the materialized path do not apply.
func (s *Server) handleVerifyStream(w http.ResponseWriter, r *http.Request, mt string) {
	q := r.URL.Query()
	if q.Get("id") == "" {
		writeError(w, http.StatusBadRequest,
			"streaming verify needs an id query parameter naming a stored certificate")
		return
	}
	rec, ok := s.loadStoredRecord(w, q.Get("id"))
	if !ok {
		return
	}
	src, err := streamRowReader(r.Body, mt, q.Get("schema"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "relation: %v", err)
		return
	}
	workers, _ := strconv.Atoi(q.Get("workers"))
	outs, err := core.VerifyBatch([]*core.Record{rec}, src, core.BatchOptions{
		Workers: s.workersFor(workers),
		Cache:   s.cache,
	})
	if err != nil {
		writeScanError(w, err)
		return
	}
	if outs[0].Err != nil {
		writeError(w, http.StatusBadRequest, "verify: %v", outs[0].Err)
		return
	}
	rep := outs[0].Report
	writeJSON(w, http.StatusOK, VerifyResponse{
		Match:             rep.Match,
		Detected:          rep.Detected,
		Verdict:           verdictFor(rep.Match),
		FrequencyMatch:    rep.FrequencyMatch,
		FalsePositiveProb: analysis.FalsePositiveProb(len(rec.WM)),
	})
}

// BatchVerifyRequest is the JSON form of the POST /v1/verify/batch body.
// The same endpoint also accepts a RAW streamed suspect (Content-Type
// text/csv or application/x-ndjson) with records/schema/workers as query
// parameters — the corpus-scale path, since the dataset is never held in
// a request struct.
type BatchVerifyRequest struct {
	// Records selects stored certificate IDs to verify against; empty
	// means every stored certificate.
	Records []string `json:"records,omitempty"`
	// Schema/Format/Data carry the suspect relation, as in /v1/verify.
	Schema  string `json:"schema"`
	Format  string `json:"format,omitempty"`
	Data    string `json:"data"`
	Workers int    `json:"workers,omitempty"`
}

// BatchVerifyResult is one certificate's outcome in a batch reply.
type BatchVerifyResult struct {
	ID string `json:"id"`
	// Match/Detected/Verdict mirror VerifyResponse (primary channel only;
	// the one-pass scan does not attempt remap recovery or the frequency
	// channel).
	Match    float64 `json:"match"`
	Detected string  `json:"detected,omitempty"`
	Verdict  string  `json:"verdict,omitempty"`
	// Error reports a per-certificate failure; the batch still completes.
	Error string `json:"error,omitempty"`
}

// BatchVerifyResponse is the POST /v1/verify/batch reply; results follow
// the requested certificate order (or sorted ID order when verifying the
// whole catalog).
type BatchVerifyResponse struct {
	Results []BatchVerifyResult `json:"results"`
	// Tuples is the number of suspect rows scanned — once, no matter how
	// many certificates were checked.
	Tuples int `json:"tuples"`
}

// handleVerifyBatch verifies one uploaded suspect dataset against many
// stored certificates in a single scan (core.VerifyBatch): the audit
// primitive for "does anyone's watermark survive in this corpus?".
func (s *Server) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	var ids []string
	var workers int
	var src relation.RowReader
	if mt := requestMediaType(r); isStreamType(mt) {
		q := r.URL.Query()
		for _, id := range strings.Split(q.Get("records"), ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
		workers, _ = strconv.Atoi(q.Get("workers"))
		var err error
		if src, err = streamRowReader(r.Body, mt, q.Get("schema")); err != nil {
			writeError(w, http.StatusBadRequest, "relation: %v", err)
			return
		}
	} else {
		var req BatchVerifyRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if req.Schema == "" || req.Data == "" {
			writeError(w, http.StatusBadRequest, "missing schema or data")
			return
		}
		schema, err := relation.ParseSchemaSpec(req.Schema)
		if err != nil {
			writeError(w, http.StatusBadRequest, "relation: %v", err)
			return
		}
		if src, err = rowReaderForFormat(req.Format, strings.NewReader(req.Data), schema); err != nil {
			writeError(w, http.StatusBadRequest, "relation: %v", err)
			return
		}
		ids, workers = req.Records, req.Workers
	}

	// Explicitly requested IDs must all resolve (an unknown one is a
	// 404); in whole-catalog mode a record deleted between List and Get
	// is reported per-certificate instead of failing the audit.
	explicit := len(ids) != 0
	if !explicit {
		all, err := s.store.List()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if len(all) == 0 {
			writeError(w, http.StatusBadRequest, "no stored certificates to verify against")
			return
		}
		ids = all
	}
	resp := BatchVerifyResponse{Results: make([]BatchVerifyResult, len(ids))}
	var recs []*core.Record
	var live []int // position in recs -> position in ids
	for i, id := range ids {
		id = strings.TrimSpace(id)
		resp.Results[i].ID = id
		rec, err := s.store.Get(id)
		switch {
		case err == nil:
			recs = append(recs, rec)
			live = append(live, i)
		case errors.Is(err, store.ErrNotFound) && !explicit:
			resp.Results[i].Error = err.Error()
		case errors.Is(err, store.ErrNotFound):
			writeError(w, http.StatusNotFound, "%v", err)
			return
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}

	outs, err := core.VerifyBatch(recs, src, core.BatchOptions{
		Workers: s.workersFor(workers),
		Cache:   s.cache,
	})
	if err != nil {
		writeScanError(w, err)
		return
	}
	for j, out := range outs {
		res := &resp.Results[live[j]]
		if out.Err != nil {
			res.Error = out.Err.Error()
		} else {
			res.Match = out.Report.Match
			res.Detected = out.Report.Detected
			res.Verdict = verdictFor(out.Report.Match)
			resp.Tuples = out.Report.Primary.Tuples
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// RecordInfo is the GET /v1/records/{id} reply: the certificate's public
// shape with the secret redacted — holders of the store's directory can
// read the raw files, but the API never echoes secrets.
type RecordInfo struct {
	ID                  string `json:"id"`
	Attribute           string `json:"attribute"`
	KeyAttr             string `json:"key_attr,omitempty"`
	WMBits              int    `json:"wm_bits"`
	E                   uint64 `json:"e"`
	Bandwidth           int    `json:"bandwidth"`
	DomainSize          int    `json:"domain_size"`
	HasFrequencyChannel bool   `json:"has_frequency_channel"`
}

func (s *Server) handleGetRecord(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, err := s.store.Get(id)
	if errors.Is(err, store.ErrNotFound) {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	} else if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, RecordInfo{
		ID:                  id,
		Attribute:           rec.Attribute,
		KeyAttr:             rec.KeyAttr,
		WMBits:              len(rec.WM),
		E:                   rec.E,
		Bandwidth:           rec.Bandwidth,
		DomainSize:          len(rec.Domain),
		HasFrequencyChannel: rec.HasFrequencyChannel,
	})
}

func (s *Server) handleDeleteRecord(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	err := s.store.Delete(id)
	if errors.Is(err, store.ErrNotFound) {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	} else if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleListRecords(w http.ResponseWriter, r *http.Request) {
	ids, err := s.store.List() // sorted by ID: listing is deterministic
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "invalid limit %q", v)
			return
		}
		if n < len(ids) {
			ids = ids[:n]
		}
	}
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, map[string][]string{"records": ids})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":         "ok",
		"uptime_seconds": int(time.Since(s.started).Seconds()),
		"workers":        s.cfg.Workers,
	}
	if s.cache != nil {
		body["scanner_cache"] = s.cache.Stats()
	}
	writeJSON(w, http.StatusOK, body)
}
