// Package server exposes the watermarking system as a JSON HTTP service —
// the corpus-scale front door the CLI cannot be: many embed/verify jobs
// running concurrently, each internally parallelized by the chunked
// worker pool of internal/pipeline, with certificates persisted in an
// on-disk record store.
//
// The wire contract — every request, response, resource and error shape —
// lives in internal/api and is shared with the internal/client Go SDK;
// this package only binds those types to routes. Two route generations
// serve the same types:
//
//	POST   /v1/watermark      POST   /v2/watermark       embed, persist the certificate
//	POST   /v1/verify         POST   /v2/verify          verify one suspect
//	POST   /v1/verify/batch   POST   /v2/verify/batch    verify against many certificates in ONE scan
//	GET    /v1/records        GET    /v2/records         list certificates (cursor pagination)
//	GET    /v1/records/{id}   GET    /v2/records/{id}    inspect a certificate (secret redacted)
//	DELETE /v1/records/{id}   DELETE /v2/records/{id}    drop a certificate
//	                          POST   /v2/jobs            submit an async job (watermark | verify_batch)
//	                          GET    /v2/jobs            list jobs, newest first
//	                          GET    /v2/jobs/{id}       poll a job
//	                          DELETE /v2/jobs/{id}       cancel a job
//	                          GET    /v2/jobs/{id}/trace assembled cross-process span tree
//	GET    /healthz                                      liveness probe
//	GET    /debug/traces                                 flight recorder (slowest + errored)
//	GET/PUT /debug/loglevel                              runtime log level
//
// /v1 responses are bit-compatible with their original shapes (the error
// envelope gained only the machine-readable "code" field; /v1 record
// listings paginate via the X-Next-After response header, /v2 via the
// "next" body field). Jobs are /v2-only: long corpus audits run on the
// bounded worker pool of internal/jobs and are polled, not awaited, by
// the submitting request.
//
// Every handler threads its request context into the execution stack, so
// a disconnected client stops the scan work it started; job cancellation
// and server shutdown travel the same way. Relations travel either inline
// in JSON request/response bodies as CSV (default) or JSONL text plus the
// schema-spec grammar of internal/relation, or — on the verify endpoints —
// as RAW streamed request bodies: POST with Content-Type text/csv or
// application/x-ndjson and the rows flow straight from the socket into
// the detection pipeline tuple-at-a-time, never materialized in a request
// struct (parameters travel as query strings). Prepared certificate state
// is cached across requests (core.ScannerCache), so auditing many
// suspects against a registered catalog re-derives keys and domains once.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/keyhash"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/relation"
	"repro/internal/server/store"
)

// DefaultMaxBodyBytes bounds request bodies (relations travel inline).
const DefaultMaxBodyBytes = 256 << 20 // 256 MiB

// Config parameterises a Server.
type Config struct {
	// Workers is the default per-request worker count for the pipeline;
	// <= 0 means runtime.NumCPU(). Requests may override it downward or
	// upward with their own "workers" field.
	Workers int
	// MaxBodyBytes caps request body size; <= 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// ScannerCacheEntries bounds the prepared-certificate cache; 0 means
	// core.DefaultScannerCacheEntries, negative disables the cache.
	ScannerCacheEntries int
	// JobWorkers bounds how many async jobs run concurrently; <= 0 means
	// jobs.DefaultWorkers.
	JobWorkers int
	// JobQueueDepth bounds queued-but-not-running jobs; beyond it POST
	// /v2/jobs replies 429. <= 0 means jobs.DefaultQueueDepth.
	JobQueueDepth int
	// JobRetain bounds how many finished jobs stay pollable; <= 0 means
	// jobs.DefaultRetain.
	JobRetain int
	// HashKernel pins the batched keyed-hash backend every scan on this
	// server runs on (wmserver -kernel). Empty means keyhash.KernelAuto:
	// the backend the startup micro-benchmark measures fastest on this
	// machine. Verdicts are identical across backends.
	HashKernel keyhash.KernelKind
	// Cluster selects the distributed-audit role (single node by
	// default): a coordinator fans verify_batch audits out across joined
	// workers, a worker heartbeats a coordinator and serves shard scans.
	Cluster ClusterConfig
	// Log, when non-nil, receives one structured line per request (with
	// its request ID) plus cluster membership and dispatch events.
	Log *slog.Logger
	// LogLevel, when non-nil, is the dynamic level behind Log (build Log
	// with obs.NewLogger over this var); PUT /debug/loglevel adjusts it
	// at runtime. Nil leaves the level fixed and the endpoint a 404.
	LogLevel *slog.LevelVar
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (wmserver
	// -pprof). Off by default: profiles expose process internals.
	EnablePprof bool
	// Trace configures the span recorder behind GET /v2/jobs/{id}/trace
	// and GET /debug/traces. The zero value keeps the recorder on with
	// head sampling off: errored requests and the flight recorder still
	// retain spans, and a sampled inbound traceparent is still honored —
	// so a traced coordinator sees its workers' spans without per-worker
	// flags. wmserver's -trace-sample flag sets the ratio.
	Trace trace.Options
	// TraceOff disables the span recorder entirely: no root spans, no
	// flight recorder, trace endpoints reply 404.
	TraceOff bool
}

// Server handles the HTTP API. Create with New, serve via Handler, and
// Close when done — Close cancels running async jobs.
type Server struct {
	store   *store.Store
	cfg     Config
	cache   *core.ScannerCache
	jobs    *jobs.Manager
	coord   *cluster.Coordinator // nil unless Config.Cluster.Coordinator
	agent   *cluster.Agent       // nil until Join on a worker
	mux     *http.ServeMux
	started time.Time
	// obs is this server's metrics registry — every subsystem registers
	// into it, GET /metrics renders it, /healthz snapshots it.
	obs     *obs.Registry
	httpMet *obs.HTTPMetrics
	// trace is this server's span recorder; nil with Config.TraceOff
	// (every trace call site is nil-safe).
	trace *trace.Recorder
}

// New builds a Server over an opened record store.
func New(st *store.Store, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{store: st, cfg: cfg, mux: http.NewServeMux(), started: time.Now()}
	s.obs = obs.NewRegistry()
	s.httpMet = obs.NewHTTPMetrics(s.obs)
	if !cfg.TraceOff {
		s.trace = trace.New(cfg.Trace)
	}
	if cfg.ScannerCacheEntries >= 0 {
		s.cache = core.NewScannerCache(cfg.ScannerCacheEntries)
	}
	s.registerProcessMetrics()
	s.jobs = jobs.NewManager(jobs.Config{
		Workers:    cfg.JobWorkers,
		QueueDepth: cfg.JobQueueDepth,
		Retain:     cfg.JobRetain,
		Obs:        s.obs,
		Trace:      s.trace,
	})
	// Every server executes shards; only a coordinator takes
	// registrations (elsewhere the route 404s, so a stray -join against a
	// non-coordinator fails loudly instead of silently heartbeating).
	s.mux.HandleFunc("POST /v2/internal/scan", s.handleInternalScan)
	if cfg.Cluster.Coordinator {
		copts := []cluster.CoordinatorOption{cluster.WithObs(s.obs)}
		if cfg.Log != nil {
			copts = append(copts, cluster.WithLogger(cfg.Log))
		}
		s.coord = cluster.NewCoordinator(cfg.Cluster.Cluster, copts...)
		s.mux.HandleFunc("POST /v2/internal/workers", s.handleRegisterWorker)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.trace != nil {
		s.mux.HandleFunc("GET /v2/internal/trace/{id}", s.handleInternalTrace)
		s.mux.HandleFunc("GET /v2/jobs/{id}/trace", s.handleJobTrace)
		s.mux.HandleFunc("GET /debug/traces", s.handleFlight)
	}
	if cfg.LogLevel != nil {
		s.mux.HandleFunc("GET /debug/loglevel", s.handleGetLogLevel)
		s.mux.HandleFunc("PUT /debug/loglevel", s.handleSetLogLevel)
	}
	if cfg.EnablePprof {
		s.mountPprof()
	}
	for _, v := range []string{"/v1", "/v2"} {
		s.mux.HandleFunc("POST "+v+"/watermark", s.handleWatermark)
		s.mux.HandleFunc("POST "+v+"/verify", s.handleVerify)
		s.mux.HandleFunc("POST "+v+"/verify/batch", s.handleVerifyBatch)
		s.mux.HandleFunc("GET "+v+"/records/{id}", s.handleGetRecord)
		s.mux.HandleFunc("DELETE "+v+"/records/{id}", s.handleDeleteRecord)
	}
	s.mux.HandleFunc("GET /v1/records", s.handleListRecordsV1)
	s.mux.HandleFunc("GET /v2/records", s.handleListRecordsV2)
	s.mux.HandleFunc("POST /v2/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v2/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v2/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v2/jobs/{id}", s.handleCancelJob)
	return s
}

// Close stops the async-job subsystem — running jobs are cancelled
// through their contexts and their scan workers exit mid-pass — and, on
// a cluster worker, the heartbeat agent (the coordinator notices through
// lease expiry).
func (s *Server) Close() {
	if s.agent != nil {
		s.agent.Stop()
	}
	s.jobs.Close()
}

// DrainLongPolls makes parked GET /v2/jobs/{id}?wait= requests answer
// immediately (with their current snapshot) instead of waiting out their
// timers. Register it with http.Server.RegisterOnShutdown so a graceful
// drain is bounded by in-flight scan work, never by long-poll waits.
func (s *Server) DrainLongPolls() {
	s.jobs.Drain()
}

// Handler returns the root handler — the one middleware every request
// crosses: request-ID assignment (honoring an inbound X-Request-ID so a
// coordinator's fan-out stays correlated), the request's server span
// (joining an inbound traceparent the same way), body limiting,
// per-route metrics, structured 404/405 replies, and structured
// logging. Infrastructure traffic — /metrics scrapes, /healthz probes,
// /debug/* — is excluded from the per-route metrics, the request log
// and the span recorder: a 15-second scrape loop would otherwise
// dominate all three with data nobody audits.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get(obs.RequestIDHeader)
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		ctx := obs.WithRequestID(r.Context(), reqID)
		w.Header().Set(obs.RequestIDHeader, reqID)
		rec := &obs.ResponseRecorder{ResponseWriter: w}
		_, pattern := s.mux.Handler(r)
		route := routeLabel(pattern)
		infra := infraPath(r.URL.Path)
		var span *trace.Span
		if !infra {
			// Registered patterns already carry the method ("POST /v2/jobs");
			// only the unmatched bucket needs it prepended.
			name := route
			if pattern == "" {
				name = r.Method + " " + route
			}
			ctx, span = s.trace.StartServer(ctx, name, r.Header.Get(trace.Header))
			defer span.End()
		}
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(rec, r.Body, s.cfg.MaxBodyBytes)
		s.httpMet.InFlight.Inc()
		if pattern == "" {
			// The mux default would reply with an empty-bodied 404/405;
			// every error this API emits carries the envelope instead.
			s.handleUnmatched(rec, r)
		} else {
			s.mux.ServeHTTP(rec, r)
		}
		s.httpMet.InFlight.Dec()
		elapsed := time.Since(start)
		span.SetAttr("request_id", reqID)
		span.SetInt("status", int64(rec.Status()))
		if rec.Status() >= 500 {
			span.SetError(fmt.Errorf("HTTP %d", rec.Status()))
		}
		if infra {
			return
		}
		s.httpMet.Observe(route, r.Method, rec.Status(), elapsed, rec.Bytes())
		if s.cfg.Log != nil {
			s.cfg.Log.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("request_id", reqID),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", rec.Status()),
				slog.Int64("bytes", rec.Bytes()),
				slog.Duration("duration", elapsed))
		}
	})
}

// infraPath reports operational endpoints whose traffic is plumbing,
// not workload: excluded from request metrics, logs and traces.
func infraPath(p string) bool {
	return p == "/metrics" || p == "/healthz" || p == "/debug" || strings.HasPrefix(p, "/debug/")
}

// probeMethods are the methods handleUnmatched tests a path against to
// build the Allow header.
var probeMethods = []string{
	http.MethodGet, http.MethodHead, http.MethodPost, http.MethodPut,
	http.MethodPatch, http.MethodDelete, http.MethodOptions,
}

// handleUnmatched serves requests no registered pattern claims: a path
// that exists under another method gets 405 with an Allow header, an
// unknown path gets 404 — both wearing the structured error envelope.
func (s *Server) handleUnmatched(w http.ResponseWriter, r *http.Request) {
	var allowed []string
	for _, m := range probeMethods {
		if m == r.Method {
			continue
		}
		probe := &http.Request{Method: m, URL: r.URL, Host: r.Host}
		if _, pattern := s.mux.Handler(probe); pattern != "" {
			allowed = append(allowed, m)
		}
	}
	if len(allowed) > 0 {
		w.Header().Set("Allow", strings.Join(allowed, ", "))
		writeErr(w, api.Errorf(api.CodeMethodNotAllowed,
			"method %s not allowed for %s (allow: %s)", r.Method, r.URL.Path, strings.Join(allowed, ", ")))
		return
	}
	writeErr(w, api.Errorf(api.CodeNotFound, "no such route: %s %s", r.Method, r.URL.Path))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing left to report
}

// writeErr emits a typed api error with its canonical status.
func writeErr(w http.ResponseWriter, e *api.Error) {
	writeJSON(w, e.HTTPStatus(), e)
}

// decodeBody decodes a JSON request body, distinguishing a size-limit
// rejection (413, the client can shrink and retry) from a malformed
// request (400, retrying is pointless). Returns false after replying.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeErr(w, api.Errorf(api.CodePayloadTooLarge,
				"request body exceeds %d bytes", maxErr.Limit))
			return false
		}
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "decoding request: %v", err))
		return false
	}
	return true
}

// decodeRelation parses an inline relation payload.
func decodeRelation(schemaSpec, format, data string) (*relation.Relation, *relation.Schema, error) {
	if schemaSpec == "" {
		return nil, nil, errors.New("missing schema")
	}
	if data == "" {
		return nil, nil, errors.New("missing data")
	}
	schema, err := relation.ParseSchemaSpec(schemaSpec)
	if err != nil {
		return nil, nil, err
	}
	var r *relation.Relation
	switch strings.ToLower(format) {
	case "", "csv":
		r, err = relation.ReadCSV(strings.NewReader(data), schema)
	case "jsonl":
		r, err = relation.ReadJSONL(strings.NewReader(data), schema)
	default:
		return nil, nil, fmt.Errorf("unknown format %q (want csv or jsonl)", format)
	}
	if err != nil {
		return nil, nil, err
	}
	return r, schema, nil
}

// requestMediaType extracts the bare media type of a request body.
func requestMediaType(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return ""
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return ct
	}
	return mt
}

func isStreamType(mt string) bool {
	return mt == api.ContentTypeCSV || mt == api.ContentTypeNDJSON
}

// rowReaderForFormat builds a streaming reader for an inline payload
// format name ("csv" or "jsonl"). The zero-copy block readers returned
// here implement RowReader for every consumer, and the scan engines
// (pipeline.ScanMany, cluster.ScanShards) recognize their BlockReader /
// RawShardSource sides to take the zero-allocation columnar and raw
// byte-range shard paths.
func rowReaderForFormat(format string, rd io.Reader, schema *relation.Schema) (relation.RowReader, error) {
	switch strings.ToLower(format) {
	case "", "csv":
		return relation.NewCSVBlockReader(rd, schema)
	case "jsonl":
		return relation.NewJSONLBlockReader(rd, schema), nil
	default:
		return nil, fmt.Errorf("unknown format %q (want csv or jsonl)", format)
	}
}

// streamRowReader builds a row reader over a raw streamed request body.
func streamRowReader(body io.Reader, mt, schemaSpec string) (relation.RowReader, error) {
	if schemaSpec == "" {
		return nil, errors.New("missing schema query parameter")
	}
	schema, err := relation.ParseSchemaSpec(schemaSpec)
	if err != nil {
		return nil, err
	}
	switch mt {
	case api.ContentTypeCSV:
		return rowReaderForFormat("csv", body, schema)
	case api.ContentTypeNDJSON:
		return rowReaderForFormat("jsonl", body, schema)
	default:
		return nil, fmt.Errorf("unsupported content type %q", mt)
	}
}

// encodeRelation renders a relation back into a payload string.
func encodeRelation(r *relation.Relation, format string) (string, error) {
	var b strings.Builder
	var err error
	switch strings.ToLower(format) {
	case "", "csv":
		err = relation.WriteCSV(&b, r)
	case "jsonl":
		err = relation.WriteJSONL(&b, r)
	default:
		err = fmt.Errorf("unknown format %q", format)
	}
	return b.String(), err
}

// workersFor resolves a request's worker override against the server
// default.
func (s *Server) workersFor(requested int) int {
	if requested > 0 {
		return requested
	}
	return s.cfg.Workers
}

// ---- HTTP handlers: thin decode/reply shells over the exec layer ----

func (s *Server) handleWatermark(w http.ResponseWriter, r *http.Request) {
	var req api.WatermarkRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, aerr := s.execWatermark(r.Context(), req, nil)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if mt := requestMediaType(r); isStreamType(mt) {
		s.handleVerifyStream(w, r, mt)
		return
	}
	var req api.VerifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, aerr := s.execVerify(r.Context(), req)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleVerifyStream serves POST verify with a raw text/csv or
// application/x-ndjson body: the suspect rows flow from the socket into
// the detection pipeline without ever being materialized server-side.
// Parameters travel as query strings — id (a stored certificate,
// required), schema (the schema spec), workers. Only the primary channel
// is scored: the stream is consumed in one pass, so the remap-recovery
// and frequency-channel rescans of the materialized path do not apply.
func (s *Server) handleVerifyStream(w http.ResponseWriter, r *http.Request, mt string) {
	q := r.URL.Query()
	id := q.Get("id")
	if id == "" {
		writeErr(w, api.Errorf(api.CodeInvalidArgument,
			"streaming verify needs an id query parameter naming a stored certificate"))
		return
	}
	src, err := streamRowReader(r.Body, mt, q.Get("schema"))
	if err != nil {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "relation: %v", err))
		return
	}
	workers, _ := strconv.Atoi(q.Get("workers"))
	batch, aerr := s.execVerifyBatchScan(r.Context(), []string{id}, true, src, workers, nil)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	res := batch.Results[0]
	if res.Error != "" {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "verify: %s", res.Error))
		return
	}
	writeJSON(w, http.StatusOK, api.VerifyResponse{
		Match:             res.Match,
		Detected:          res.Detected,
		Verdict:           res.Verdict,
		FrequencyMatch:    -1,
		FalsePositiveProb: falsePositiveForDetected(res.Detected),
	})
}

// handleVerifyBatch verifies one uploaded suspect dataset against many
// stored certificates in a single scan (core.VerifyBatch): the audit
// primitive for "does anyone's watermark survive in this corpus?".
func (s *Server) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	if mt := requestMediaType(r); isStreamType(mt) {
		q := r.URL.Query()
		ids := splitIDs(q.Get("records"))
		workers, _ := strconv.Atoi(q.Get("workers"))
		src, err := streamRowReader(r.Body, mt, q.Get("schema"))
		if err != nil {
			writeErr(w, api.Errorf(api.CodeInvalidArgument, "relation: %v", err))
			return
		}
		resp, aerr := s.execVerifyBatchScan(r.Context(), ids, len(ids) != 0, src, workers, nil)
		if aerr != nil {
			writeErr(w, aerr)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	var req api.BatchVerifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, aerr := s.execVerifyBatch(r.Context(), req, nil)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// splitIDs parses a comma-separated records selection, tolerating blanks.
func splitIDs(raw string) []string {
	var ids []string
	for _, id := range strings.Split(raw, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

// ---- record resources ----

func (s *Server) handleGetRecord(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, aerr := s.loadStoredRecord(id)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, api.RecordInfo{
		ID:                  id,
		Attribute:           rec.Attribute,
		KeyAttr:             rec.KeyAttr,
		WMBits:              len(rec.WM),
		E:                   rec.E,
		Bandwidth:           rec.Bandwidth,
		DomainSize:          len(rec.Domain),
		HasFrequencyChannel: rec.HasFrequencyChannel,
	})
}

func (s *Server) handleDeleteRecord(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	err := s.store.Delete(id)
	if errors.Is(err, store.ErrNotFound) {
		writeErr(w, api.Errorf(api.CodeNotFound, "%v", err))
		return
	} else if err != nil {
		writeErr(w, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, api.DeleteResponse{Deleted: id})
}

// listPage parses the shared pagination query parameters and walks the
// store. Returns ok=false after replying on a bad parameter.
func (s *Server) listPage(w http.ResponseWriter, r *http.Request) (page api.RecordList, ok bool) {
	q := r.URL.Query()
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, api.Errorf(api.CodeInvalidArgument, "invalid limit %q", v))
			return page, false
		}
		if n == 0 {
			// Historical /v1 semantics: limit=0 truncates to nothing.
			page.Records = []string{}
			return page, true
		}
		limit = n
	}
	ids, next, err := s.store.ListPage(q.Get("after"), limit)
	if err != nil {
		writeErr(w, api.Errorf(api.CodeInternal, "%v", err))
		return page, false
	}
	if ids == nil {
		ids = []string{}
	}
	page.Records, page.Next = ids, next
	return page, true
}

// handleListRecordsV1 keeps the original body shape {"records": [...]};
// the next-page cursor travels in the X-Next-After header.
func (s *Server) handleListRecordsV1(w http.ResponseWriter, r *http.Request) {
	page, ok := s.listPage(w, r)
	if !ok {
		return
	}
	if page.Next != "" {
		w.Header().Set(api.NextAfterHeader, page.Next)
	}
	writeJSON(w, http.StatusOK, map[string][]string{"records": page.Records})
}

// handleListRecordsV2 returns the full RecordList resource, cursor in the
// body.
func (s *Server) handleListRecordsV2(w http.ResponseWriter, r *http.Request) {
	page, ok := s.listPage(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, page)
}

// handleHealthz is a thin view over the metrics registry: every numeric
// field is read from the same Snapshot that GET /metrics renders, so
// the two surfaces cannot drift. (The cluster block keeps its
// structured role/membership shape; its numbers come from the same
// membership table the wm_cluster_* sampled families read.)
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.obs.Snapshot()
	body := map[string]any{
		"status":         "ok",
		"uptime_seconds": int(snap["wm_uptime_seconds"]),
		"workers":        s.cfg.Workers,
		"jobs": jobs.Stats{
			Workers:   int(snap["wm_jobs_workers"]),
			Queued:    int(snap["wm_jobs_queued"]),
			Running:   int(snap["wm_jobs_running"]),
			Retained:  int(snap["wm_jobs_retained"]),
			QueueCap:  int(snap["wm_jobs_queue_capacity"]),
			RetainCap: int(snap["wm_jobs_retain_capacity"]),
		},
		"cluster": s.clusterStatus(),
	}
	// The hash-kernel block: which batched keyed-hash backend scans on
	// this node run on, whether it was pinned (-kernel) or chosen by the
	// startup micro-benchmark, and the measured rate of every available
	// backend. Same source of truth as the wm_keyhash_calibration_*
	// metric families.
	cal := keyhash.Calibrate()
	selected := s.cfg.HashKernel
	if selected == keyhash.KernelAuto {
		selected = cal.Kind
	}
	body["hash_kernel"] = map[string]any{
		"selected":       string(selected),
		"pinned":         s.cfg.HashKernel != keyhash.KernelAuto,
		"calibrated":     string(cal.Kind),
		"hashes_per_sec": cal.HashesPerSec,
	}
	if s.cache != nil {
		body["scanner_cache"] = core.CacheStats{
			Entries: int(snap["wm_scanner_cache_entries"]),
			Hits:    uint64(snap["wm_scanner_cache_hits_total"]),
			Misses:  uint64(snap["wm_scanner_cache_misses_total"]),
		}
	}
	writeJSON(w, http.StatusOK, body)
}
