// The exec layer: every operation the API performs, expressed as a pure
// (context, request) -> (response, *api.Error) function with no knowledge
// of http.ResponseWriter. The synchronous HTTP handlers and the async job
// executor (jobs.go) both call these, so a watermark submitted as POST
// /v1/watermark and one submitted as a /v2 job run exactly the same code
// under exactly the same cancellation rules.
package server

import (
	"context"
	"errors"
	"net/http"
	"strings"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/server/store"
)

// verdictFor maps a bit-agreement fraction onto the API verdict scale,
// at the shared core thresholds.
func verdictFor(match float64) string {
	switch {
	case match >= core.PresentThreshold:
		return api.VerdictPresent
	case match >= core.PartialThreshold:
		return api.VerdictPartial
	default:
		return api.VerdictAbsent
	}
}

// falsePositiveForDetected scores the chance of a full match of the
// detected bit string's length on unmarked data.
func falsePositiveForDetected(detected string) float64 {
	return analysis.FalsePositiveProb(len(detected))
}

// ctxErr translates a context cancellation into its api error, or nil
// when err is unrelated to cancellation.
func ctxErr(err error) *api.Error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return api.Errorf(api.CodeCancelled, "request cancelled: %v", err)
	}
	return nil
}

// scanErr classifies a failed streaming scan: a tripped body limit is
// payload_too_large (shrink and retry), a cancellation is cancelled,
// anything else is a malformed suspect.
func scanErr(err error) *api.Error {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		return api.Errorf(api.CodePayloadTooLarge,
			"request body exceeds %d bytes", maxErr.Limit)
	}
	if aerr := ctxErr(err); aerr != nil {
		return aerr
	}
	return api.Errorf(api.CodeInvalidArgument, "suspect data: %v", err)
}

// loadStoredRecord fetches a certificate by ID as a typed api error on
// failure.
func (s *Server) loadStoredRecord(id string) (*core.Record, *api.Error) {
	rec, err := s.store.Get(id)
	if errors.Is(err, store.ErrNotFound) {
		return nil, api.Errorf(api.CodeNotFound, "%v", err)
	} else if err != nil {
		return nil, api.Errorf(api.CodeInternal, "%v", err)
	}
	return rec, nil
}

// execWatermark embeds a watermark into an inline relation, persists the
// certificate, and returns the marked data — the body of POST /watermark
// and of "watermark" jobs. progress, when non-nil, receives per-block
// tuple counts from the embedding pass (async jobs meter themselves
// through it; sync handlers pass nil).
func (s *Server) execWatermark(ctx context.Context, req api.WatermarkRequest, progress func(tuples int)) (*api.WatermarkResponse, *api.Error) {
	rel, _, err := decodeRelation(req.Schema, req.Format, req.Data)
	if err != nil {
		return nil, api.Errorf(api.CodeInvalidArgument, "relation: %v", err)
	}
	var dom *relation.Domain
	if len(req.Domain) > 0 {
		if dom, err = relation.NewDomain(req.Domain); err != nil {
			return nil, api.Errorf(api.CodeInvalidArgument, "domain: %v", err)
		}
	}
	rec, st, err := core.WatermarkContext(ctx, rel, core.Spec{
		Secret:                req.Secret,
		Attribute:             req.Attribute,
		KeyAttr:               req.KeyAttr,
		WM:                    req.WM,
		E:                     req.E,
		Domain:                dom,
		WithFrequencyChannel:  req.FrequencyChannel,
		MaxAlterationFraction: req.MaxAlterationFraction,
		Workers:               s.workersFor(req.Workers),
		Progress:              progress,
	})
	if err != nil {
		if aerr := ctxErr(err); aerr != nil {
			return nil, aerr
		}
		return nil, api.Errorf(api.CodeInvalidArgument, "watermark: %v", err)
	}
	id, err := s.store.Put(rec)
	if err != nil {
		return nil, api.Errorf(api.CodeInternal, "persisting record: %v", err)
	}
	data, err := encodeRelation(rel, req.Format)
	if err != nil {
		return nil, api.Errorf(api.CodeInternal, "encoding result: %v", err)
	}
	return &api.WatermarkResponse{
		ID:             id,
		Data:           data,
		Tuples:         st.Mark.Tuples,
		Fit:            st.Mark.Fit,
		Altered:        st.Mark.Altered,
		AlterationRate: st.Mark.AlterationRate(),
		Bandwidth:      st.Mark.Bandwidth,
		FrequencyMoved: st.FrequencyMoved,
	}, nil
}

// execVerify verifies an inline suspect relation against a stored or
// inline certificate — the materialized path, with remap recovery and
// the frequency channel in play.
func (s *Server) execVerify(ctx context.Context, req api.VerifyRequest) (*api.VerifyResponse, *api.Error) {
	var rec *core.Record
	switch {
	case req.ID != "" && req.Record != nil:
		return nil, api.Errorf(api.CodeInvalidArgument, "pass either id or record, not both")
	case req.ID != "":
		var aerr *api.Error
		if rec, aerr = s.loadStoredRecord(req.ID); aerr != nil {
			return nil, aerr
		}
	case req.Record != nil:
		rec = req.Record
	default:
		return nil, api.Errorf(api.CodeInvalidArgument, "missing certificate: pass id or record")
	}
	suspect, _, err := decodeRelation(req.Schema, req.Format, req.Data)
	if err != nil {
		return nil, api.Errorf(api.CodeInvalidArgument, "relation: %v", err)
	}
	rep, err := rec.VerifyContext(ctx, suspect, core.VerifyOptions{
		Workers:    s.workersFor(req.Workers),
		Cache:      s.cache,
		HashKernel: s.cfg.HashKernel,
	})
	if err != nil {
		if aerr := ctxErr(err); aerr != nil {
			return nil, aerr
		}
		return nil, api.Errorf(api.CodeInvalidArgument, "verify: %v", err)
	}
	return &api.VerifyResponse{
		Match:             rep.Match,
		Detected:          rep.Detected,
		Verdict:           verdictFor(rep.Match),
		RemapRecovered:    rep.RemapRecovered,
		FrequencyMatch:    rep.FrequencyMatch,
		FalsePositiveProb: analysis.FalsePositiveProb(len(rec.WM)),
	}, nil
}

// execVerifyBatch is the inline-JSON form of batch verification: parse
// the suspect payload into a row reader, then run the shared scan.
func (s *Server) execVerifyBatch(ctx context.Context, req api.BatchVerifyRequest, progress func(tuples int)) (*api.BatchVerifyResponse, *api.Error) {
	if req.Schema == "" || req.Data == "" {
		return nil, api.Errorf(api.CodeInvalidArgument, "missing schema or data")
	}
	schema, err := relation.ParseSchemaSpec(req.Schema)
	if err != nil {
		return nil, api.Errorf(api.CodeInvalidArgument, "relation: %v", err)
	}
	src, err := rowReaderForFormat(req.Format, strings.NewReader(req.Data), schema)
	if err != nil {
		return nil, api.Errorf(api.CodeInvalidArgument, "relation: %v", err)
	}
	return s.execVerifyBatchScan(ctx, req.Records, len(req.Records) != 0, src, req.Workers, progress)
}

// execVerifyBatchScan verifies one suspect stream against many stored
// certificates in a single pass. Explicitly requested IDs must all
// resolve (an unknown one is not_found); in whole-catalog mode a record
// deleted between List and Get is reported per-certificate instead of
// failing the audit.
func (s *Server) execVerifyBatchScan(ctx context.Context, ids []string, explicit bool, src relation.RowReader, workers int, progress func(tuples int)) (*api.BatchVerifyResponse, *api.Error) {
	if !explicit {
		all, err := s.store.List()
		if err != nil {
			return nil, api.Errorf(api.CodeInternal, "%v", err)
		}
		if len(all) == 0 {
			return nil, api.Errorf(api.CodeInvalidArgument, "no stored certificates to verify against")
		}
		ids = all
	}
	resp := &api.BatchVerifyResponse{Results: make([]api.BatchVerifyResult, len(ids))}
	var recs []*core.Record
	var live []int // position in recs -> position in ids
	for i, id := range ids {
		id = strings.TrimSpace(id)
		resp.Results[i].ID = id
		rec, err := s.store.Get(id)
		switch {
		case err == nil:
			recs = append(recs, rec)
			live = append(live, i)
		case errors.Is(err, store.ErrNotFound) && !explicit:
			resp.Results[i].Error = err.Error()
		case errors.Is(err, store.ErrNotFound):
			return nil, api.Errorf(api.CodeNotFound, "%v", err)
		default:
			return nil, api.Errorf(api.CodeInternal, "%v", err)
		}
	}

	opts := core.BatchOptions{
		Workers:    s.workersFor(workers),
		Cache:      s.cache,
		Progress:   progress,
		HashKernel: s.cfg.HashKernel,
	}
	// A coordinator with live workers fans the scan out across the
	// cluster; the merged result is bit-identical to the local pass (the
	// equivalence tests pin this), so callers cannot tell the difference
	// except in wall-clock. With no live workers the audit degrades to
	// the local scan rather than failing — an empty cluster is a
	// single-node server that happens to accept registrations.
	var outs []core.BatchReport
	var err error
	if s.coord != nil && s.coord.LiveWorkers() > 0 {
		if outs, err = s.clusterVerifyBatch(ctx, recs, src, opts); err != nil {
			return nil, clusterErr(err)
		}
	} else {
		if outs, err = core.VerifyBatch(ctx, recs, src, opts); err != nil {
			return nil, scanErr(err)
		}
	}
	for j, out := range outs {
		res := &resp.Results[live[j]]
		if out.Err != nil {
			res.Error = out.Err.Error()
		} else {
			res.Match = out.Report.Match
			res.Detected = out.Report.Detected
			res.Verdict = verdictFor(out.Report.Match)
			resp.Tuples = out.Report.Primary.Tuples
		}
	}
	return resp, nil
}
