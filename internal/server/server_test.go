package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/server/store"
)

const testSchemaSpec = "Visit_Nbr:int!key, Item_Nbr:int:categorical"

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(st, Config{Workers: 2}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func testCSV(t *testing.T, n int) (csv string, domain []string) {
	t.Helper()
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: n, CatalogSize: 200, ZipfS: 1.0, Seed: "server-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := relation.WriteCSV(&b, r); err != nil {
		t.Fatal(err)
	}
	return b.String(), dom.Values()
}

func postJSON(t *testing.T, url string, body any, out any) (status int) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) (status int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode
}

// TestWatermarkVerifyRoundTrip is the end-to-end flow the service exists
// for: watermark a relation, persist the certificate, verify the marked
// copy against the stored certificate by ID.
func TestWatermarkVerifyRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	csv, domain := testCSV(t, 6000)

	var wmResp WatermarkResponse
	status := postJSON(t, ts.URL+"/v1/watermark", WatermarkRequest{
		Schema:    testSchemaSpec,
		Data:      csv,
		Secret:    "server-test-secret",
		Attribute: "Item_Nbr",
		WM:        "1011001110",
		E:         30,
		Domain:    domain,
		Workers:   3,
	}, &wmResp)
	if status != http.StatusOK {
		t.Fatalf("watermark status %d: %+v", status, wmResp)
	}
	if wmResp.ID == "" || wmResp.Altered == 0 || wmResp.Data == csv {
		t.Fatalf("embedding did nothing: %+v", wmResp)
	}

	var vResp VerifyResponse
	status = postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		ID:     wmResp.ID,
		Schema: testSchemaSpec,
		Data:   wmResp.Data,
	}, &vResp)
	if status != http.StatusOK {
		t.Fatalf("verify status %d: %+v", status, vResp)
	}
	if vResp.Match != 1 || vResp.Verdict != "present" {
		t.Fatalf("verification of the marked copy failed: %+v", vResp)
	}

	// The pristine data must NOT verify as present.
	status = postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		ID:     wmResp.ID,
		Schema: testSchemaSpec,
		Data:   csv,
	}, &vResp)
	if status != http.StatusOK {
		t.Fatalf("verify status %d", status)
	}
	if vResp.Verdict == "present" {
		t.Fatalf("unmarked data verified as present: %+v", vResp)
	}
}

func TestRecordEndpointRedactsSecret(t *testing.T) {
	ts := newTestServer(t)
	csv, domain := testCSV(t, 3000)

	var wmResp WatermarkResponse
	if s := postJSON(t, ts.URL+"/v1/watermark", WatermarkRequest{
		Schema: testSchemaSpec, Data: csv, Secret: "hush", Attribute: "Item_Nbr",
		WM: "10110", E: 30, Domain: domain,
	}, &wmResp); s != http.StatusOK {
		t.Fatalf("watermark status %d", s)
	}

	resp, err := http.Get(ts.URL + "/v1/records/" + wmResp.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("record status %d: %s", resp.StatusCode, buf.String())
	}
	if strings.Contains(buf.String(), "hush") {
		t.Fatalf("record endpoint leaked the secret: %s", buf.String())
	}
	var info RecordInfo
	if err := json.Unmarshal(buf.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.WMBits != 5 || info.Attribute != "Item_Nbr" || info.DomainSize != len(domain) {
		t.Fatalf("record info wrong: %+v", info)
	}

	var listResp map[string][]string
	if s := getJSON(t, ts.URL+"/v1/records", &listResp); s != http.StatusOK {
		t.Fatalf("list status %d", s)
	}
	if len(listResp["records"]) != 1 || listResp["records"][0] != wmResp.ID {
		t.Fatalf("list wrong: %+v", listResp)
	}
}

// TestVerifyWithInlineRecordAndJSONL watermarks locally through core (the
// way an owner holding their own certificate file would), then verifies
// over the HTTP API with the inline record and a JSONL suspect payload.
func TestVerifyWithInlineRecordAndJSONL(t *testing.T) {
	ts := newTestServer(t)
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 3000, CatalogSize: 200, ZipfS: 1.0, Seed: "server-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := core.Watermark(r, core.Spec{
		Secret:    "inline-secret",
		Attribute: "Item_Nbr",
		WM:        "1011001110",
		E:         20,
		Domain:    dom,
	})
	if err != nil {
		t.Fatal(err)
	}
	var jb strings.Builder
	if err := relation.WriteJSONL(&jb, r); err != nil {
		t.Fatal(err)
	}
	var vResp VerifyResponse
	if s := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		Record: rec, Schema: testSchemaSpec, Format: "jsonl", Data: jb.String(),
	}, &vResp); s != http.StatusOK {
		t.Fatalf("verify status %d", s)
	}
	if vResp.Match != 1 {
		t.Fatalf("JSONL inline-record verify match %v, want 1", vResp.Match)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)

	var e apiError
	if s := postJSON(t, ts.URL+"/v1/watermark", WatermarkRequest{
		Schema: "bogus spec", Data: "x", Secret: "s", Attribute: "A", WM: "101",
	}, &e); s != http.StatusBadRequest {
		t.Fatalf("bad schema: status %d, want 400 (%+v)", s, e)
	}
	if s := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		Schema: testSchemaSpec, Data: "Visit_Nbr,Item_Nbr\n1,10\n",
	}, &e); s != http.StatusBadRequest {
		t.Fatalf("missing certificate: status %d, want 400 (%+v)", s, e)
	}
	if s := getJSON(t, ts.URL+"/v1/records/00000000000000000000000000000000", &e); s != http.StatusNotFound {
		t.Fatalf("unknown record: status %d, want 404 (%+v)", s, e)
	}
	resp, err := http.Post(ts.URL+"/v1/watermark", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken JSON: status %d, want 400", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	var h map[string]any
	if s := getJSON(t, ts.URL+"/healthz", &h); s != http.StatusOK {
		t.Fatalf("healthz status %d", s)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz body: %+v", h)
	}
}
