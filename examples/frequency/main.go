// Frequency demonstrates the Section 4.2 frequency-domain channel: the
// extreme vertical-partitioning attack keeps a *single* categorical column
// — no primary key, no second attribute, not even row identity — and the
// only property left to own is the value occurrence distribution. A
// watermark embedded into that distribution (via the numeric-set scheme of
// the paper's reference [10]) survives where every key-association channel
// dies.
//
//	go run ./examples/frequency
package main

import (
	"fmt"
	"log"
	"strconv"

	"repro/internal/attacks"
	"repro/internal/datagen"
	"repro/internal/ecc"
	"repro/internal/freq"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/relation"
	"repro/internal/stats"
)

func main() {
	r, catalog, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 40000, CatalogSize: 400, ZipfS: 1.0, Seed: "frequency-example",
	})
	if err != nil {
		log.Fatal(err)
	}
	wm := ecc.MustParseBits("101101")

	// Belt and braces: the primary key-association channel...
	keyOpts := mark.Options{
		Attr:   "Item_Nbr",
		K1:     keyhash.NewKey("freq-demo-k1"),
		K2:     keyhash.NewKey("freq-demo-k2"),
		E:      65,
		Domain: catalog,
	}
	if _, err := mark.Embed(r, wm, keyOpts); err != nil {
		log.Fatal(err)
	}
	// ...plus the frequency channel on the same attribute.
	fp := freq.DefaultParams(keyhash.NewKey("freq-demo-histogram"))
	fst, err := freq.Embed(r, "Item_Nbr", wm, fp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded %q twice: key channel + frequency channel (moved %d tuples = %.2f%%)\n\n",
		wm, fst.TuplesMoved, float64(fst.TuplesMoved)/float64(r.Len())*100)

	// The extreme A5 attack: Mallory keeps ONLY the item column. All keys
	// gone; all row identity gone; just a bag of 40000 item numbers.
	bag := relation.New(relation.MustSchema([]relation.Attribute{
		{Name: "rowid", Type: relation.TypeInt}, // synthetic, carries nothing
		{Name: "Item_Nbr", Type: relation.TypeInt, Categorical: true},
	}, "rowid"))
	for i := 0; i < r.Len(); i++ {
		v, _ := r.Value(i, "Item_Nbr")
		bag.MustAppend(relation.Tuple{strconv.Itoa(i), v})
	}

	// The key channel is stone dead (fit selection hashes meaningless
	// synthetic row ids).
	keyOpts.BandwidthOverride = mark.Bandwidth(r.Len(), keyOpts.E)
	keyRep, err := mark.Detect(bag, len(wm), keyOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key-association channel on the bag:  match %.0f%% (chance: 50%%)\n",
		keyRep.MatchFraction(wm)*100)

	// The frequency channel reads the histogram and doesn't care.
	freqRep, err := freq.Detect(bag, "Item_Nbr", len(wm), fp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequency channel on the bag:        %q (match %.0f%%)\n\n",
		freqRep.WM, (1-ecc.AlterationRate(wm, freqRep.WM))*100)

	// And it survives further abuse: lose 40% of the bag, shuffle the rest.
	src := stats.NewSource("frequency-abuse")
	sub, err := attacks.HorizontalSubset(bag, 0.6, src)
	if err != nil {
		log.Fatal(err)
	}
	sub.Shuffle(src)
	freqRep, err = freq.Detect(sub, "Item_Nbr", len(wm), fp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after losing 40%% of the bag + shuffle: %q (match %.0f%%)\n",
		freqRep.WM, (1-ecc.AlterationRate(wm, freqRep.WM))*100)
	fmt.Println("\nthe distribution itself is the witness — flattening it would")
	fmt.Println("destroy the only value the stolen column still has (Section 4.2).")
}
