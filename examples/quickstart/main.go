// Quickstart: watermark a small categorical relation and detect the mark
// blindly — the minimal end-to-end use of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strconv"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/relation"
)

func main() {
	// 1. A relation: order number (primary key) + a categorical attribute.
	schema := relation.MustSchema([]relation.Attribute{
		{Name: "order_id", Type: relation.TypeInt},
		{Name: "warehouse", Type: relation.TypeString, Categorical: true},
	}, "order_id")
	warehouses := []string{
		"ATL", "BOS", "CHI", "DFW", "DEN", "LAX", "MIA", "NYC", "SEA", "SFO",
	}
	r := relation.New(schema)
	for i := 0; i < 5000; i++ {
		r.MustAppend(relation.Tuple{strconv.Itoa(100000 + i), warehouses[i%len(warehouses)]})
	}
	domain := relation.MustDomain(warehouses)

	// 2. The owner's secret watermark record: two keys, the fitness
	//    parameter e, the watermark bits, and (after embedding) the
	//    bandwidth.
	wm := ecc.MustParseBits("1011001110")
	opts := mark.Options{
		Attr:   "warehouse",
		K1:     keyhash.NewKey("my-secret-key-1"),
		K2:     keyhash.NewKey("my-secret-key-2"),
		E:      25, // roughly 1 in 25 tuples carries a bit
		Domain: domain,
	}

	// 3. Embed.
	st, err := mark.Embed(r, wm, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded %q into %d tuples\n", wm, r.Len())
	fmt.Printf("  fit tuples: %d, altered: %d (%.2f%% of the data)\n",
		st.Fit, st.Altered, st.AlterationRate()*100)

	// 4. Detect — blind: no original data needed, only the keys.
	rep, err := mark.Detect(r, len(wm), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected  %q (match %.0f%%, mean vote margin %.2f)\n",
		rep.WM, rep.MatchFraction(wm)*100, rep.MeanMargin)

	// 5. The wrong keys find nothing but noise.
	wrong := opts
	wrong.K1 = keyhash.NewKey("guess-1")
	wrong.K2 = keyhash.NewKey("guess-2")
	repWrong, err := mark.Detect(r, len(wm), wrong)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrong keys %q (match %.0f%%) — a coin flip per bit\n",
		repWrong.WM, repWrong.MatchFraction(wm)*100)
}
