// Airline demonstrates the Section 3.3 multi-attribute embedding on the
// paper's motivating scenario — an airline reservation relation — and the
// vertical-partitioning attack (A5) it defends against: Mallory drops the
// primary key, keeping only (departure_city, airline), and the
// inter-attribute channel still testifies to ownership.
//
//	go run ./examples/airline
package main

import (
	"fmt"
	"log"
	"strconv"

	"repro/internal/datagen"
	"repro/internal/ecc"
	"repro/internal/multimark"
	"repro/internal/relation"
)

func main() {
	// High-cardinality city catalog: the paper's own example cites 16000
	// departure cities; inter-attribute channels need key-side cardinality
	// (see internal/multimark docs).
	r, cities, airlines, err := datagen.Airline(datagen.AirlineConfig{
		N: 30000, Cities: 2000, Airlines: 20, Seed: "airline-example",
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := multimark.Config{
		Secret: "airline-owner-secret",
		E:      25,
		Domains: map[string]*relation.Domain{
			"departure_city": cities,
			"airline":        airlines,
		},
	}

	plan, err := multimark.BuildPlan(r, cfg, multimark.PlanOptions{IncludeInterAttribute: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("embedding plan (pair closure over the schema):")
	for _, p := range plan {
		fmt.Printf("  %s\n", p)
	}

	wm := ecc.MustParseBits("10110011")
	rec, stats, err := multimark.EmbedAll(r, wm, plan, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nembedded %q through %d channels:\n", wm, len(plan))
	for _, ps := range stats {
		fmt.Printf("  %-28s fit %5d  altered %5d  skipped(ledger) %d\n",
			ps.Pair.String()+":", ps.Stats.Fit, ps.Stats.Altered, ps.Stats.SkippedLedger)
	}

	// Detection on the intact relation: every channel testifies.
	comb, err := multimark.DetectAll(r, rec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nintact data: %d/%d channels detected, combined %q (match %.0f%%)\n",
		comb.Detected, len(plan), comb.WM, (1-ecc.AlterationRate(wm, comb.WM))*100)

	// Attack A5: Mallory drops the ticket number. A real thief keeps the
	// row-level association (that is where the value is), so the stolen
	// table has a synthetic row id.
	stolen := relation.New(relation.MustSchema([]relation.Attribute{
		{Name: "rowid", Type: relation.TypeInt},
		{Name: "departure_city", Type: relation.TypeString, Categorical: true},
		{Name: "airline", Type: relation.TypeString, Categorical: true},
	}, "rowid"))
	for i := 0; i < r.Len(); i++ {
		city, _ := r.Value(i, "departure_city")
		air, _ := r.Value(i, "airline")
		stolen.MustAppend(relation.Tuple{strconv.Itoa(i), city, air})
	}

	comb, err = multimark.DetectAll(stolen, rec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter A5 (primary key dropped):\n")
	for _, pd := range comb.PerPair {
		switch {
		case pd.Skipped:
			fmt.Printf("  %-28s channel gone (attribute missing)\n", pd.Pair.String()+":")
		case pd.Err != nil:
			fmt.Printf("  %-28s error: %v\n", pd.Pair.String()+":", pd.Err)
		default:
			fmt.Printf("  %-28s %q (match %.0f%%)\n", pd.Pair.String()+":",
				pd.Report.WM, pd.Report.MatchFraction(wm)*100)
		}
	}
	fmt.Printf("combined: %q (match %.0f%%) — the inter-attribute witness survives\n",
		comb.WM, (1-ecc.AlterationRate(wm, comb.WM))*100)
}
