// Courtroom walks through an ownership dispute — the use case the paper is
// built for. Alice watermarks her catalog data and licenses it; Mallory
// resells a doctored copy (subset + re-sort + random rewrites). In court,
// Alice's keys recover her watermark from Mallory's copy; the Section 4.4
// mathematics quantifies how improbable that is by chance, and a control
// experiment with random keys shows detection is not a fishing expedition.
//
//	go run ./examples/courtroom
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/attacks"
	"repro/internal/datagen"
	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/stats"
)

func main() {
	fmt.Println("=== 1. Alice publishes watermarked data =========================")
	r, catalog, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 30000, CatalogSize: 800, ZipfS: 1.0, Seed: "alice-catalog",
	})
	if err != nil {
		log.Fatal(err)
	}
	wm := ecc.MustParseBits("1100101001")
	opts := mark.Options{
		Attr:   "Item_Nbr",
		K1:     keyhash.NewKey("alice-k1-do-not-share"),
		K2:     keyhash.NewKey("alice-k2-do-not-share"),
		E:      50,
		Domain: catalog,
	}
	st, err := mark.Embed(r, wm, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Alice embeds %q, altering %.2f%% of %d tuples; records (k1, k2, e=%d, |wm_data|=%d)\n\n",
		wm, st.AlterationRate()*100, r.Len(), opts.E, st.Bandwidth)

	fmt.Println("=== 2. Mallory launders a stolen copy ===========================")
	src := stats.NewSource("mallory")
	stolen, err := attacks.HorizontalSubset(r, 0.6, src.Fork("subset"))
	if err != nil {
		log.Fatal(err)
	}
	stolen, err = attacks.SubsetAlteration(stolen, "Item_Nbr", 0.15, catalog, src.Fork("alter"))
	if err != nil {
		log.Fatal(err)
	}
	stolen = attacks.Resort(stolen, src.Fork("shuffle"))
	fmt.Printf("Mallory keeps 60%% of the tuples, rewrites 15%% of item numbers, shuffles rows (%d tuples)\n\n",
		stolen.Len())

	fmt.Println("=== 3. The court runs Alice's detector ==========================")
	detOpts := opts
	detOpts.BandwidthOverride = st.Bandwidth
	rep, err := mark.Detect(stolen, len(wm), detOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %q\n", rep.WM)
	fmt.Printf("claimed:   %q\n", wm)
	fmt.Printf("agreement: %.0f%% of bits, mean vote margin %.2f\n\n",
		rep.MatchFraction(wm)*100, rep.MeanMargin)

	fmt.Println("=== 4. How likely is that by chance? (Section 4.4) ==============")
	fmt.Printf("probability a random dataset matches all %d bits: %.3g\n",
		len(wm), analysis.FalsePositiveProb(len(wm)))
	fmt.Printf("with every one of the %d bandwidth positions agreeing: %.3g\n",
		st.Bandwidth, analysis.FalsePositiveProbFullBandwidth(r.Len(), opts.E))
	fmt.Println("the one-way hash forecloses Mallory's counter-claim that Alice")
	fmt.Println("searched for keys post-hoc: finding (k1,k2) to fit given data is")
	fmt.Println("computationally infeasible (Section 2.2)")

	fmt.Println("\n=== 5. Control: random keys find nothing ========================")
	matches := 0.0
	const controls = 10
	for i := 0; i < controls; i++ {
		ctrl := detOpts
		ctrl.K1 = keyhash.NewKey(fmt.Sprintf("random-claimant-%d-k1", i))
		ctrl.K2 = keyhash.NewKey(fmt.Sprintf("random-claimant-%d-k2", i))
		crep, err := mark.Detect(stolen, len(wm), ctrl)
		if err != nil {
			log.Fatal(err)
		}
		matches += crep.MatchFraction(wm)
	}
	fmt.Printf("mean bit agreement across %d random key pairs: %.0f%% (coin flips)\n",
		controls, matches/controls*100)
	fmt.Println("\nverdict: the watermark is Alice's, beyond reasonable doubt.")
}
