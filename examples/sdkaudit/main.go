// Sdkaudit drives the ownership-audit service end to end through the Go
// SDK (internal/client) — the programmatic consumer the v2 API exists
// for. An in-process wmserver is stood up over httptest; three owners
// register watermarked datasets; a doctored copy of one surfaces; an
// async audit job (POST /v2/jobs) checks the suspect corpus against the
// whole certificate catalog in ONE scan, is polled to completion, and
// names the owner. A second, deliberately huge job is cancelled mid-scan
// to show context cancellation stopping the workers.
//
//	go run ./examples/sdkaudit
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/attacks"
	"repro/internal/client"
	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/server/store"
	"repro/internal/stats"
)

const schemaSpec = "Visit_Nbr:int!key, Item_Nbr:int:categorical"

func main() {
	ctx := context.Background()

	fmt.Println("=== 1. An audit service comes up ================================")
	dir, err := os.MkdirTemp("", "sdkaudit-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(st, server.Config{Workers: 4, JobWorkers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	fmt.Printf("wmserver listening at %s (store %s)\n\n", ts.URL, dir)

	fmt.Println("=== 2. Three owners register watermarked datasets ===============")
	r, catalog, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 20000, CatalogSize: 500, ZipfS: 1.0, Seed: "sdkaudit",
	})
	if err != nil {
		log.Fatal(err)
	}
	var csv strings.Builder
	if err := relation.WriteCSV(&csv, r); err != nil {
		log.Fatal(err)
	}
	owners := []string{"alice", "bob", "carol"}
	marked := make(map[string]*api.WatermarkResponse, len(owners))
	for i, owner := range owners {
		resp, err := c.Watermark(ctx, api.WatermarkRequest{
			Schema:    schemaSpec,
			Data:      csv.String(),
			Secret:    owner + "-master-secret",
			Attribute: "Item_Nbr",
			WM:        fmt.Sprintf("10%08b", 37*i+5),
			E:         40,
			Domain:    catalog.Values(),
		})
		if err != nil {
			log.Fatal(err)
		}
		marked[owner] = resp
		fmt.Printf("%s registers certificate %s (%.2f%% of tuples altered)\n",
			owner, resp.ID, resp.AlterationRate*100)
	}
	fmt.Println()

	fmt.Println("=== 3. A doctored copy of Bob's dataset surfaces ================")
	schema, err := relation.ParseSchemaSpec(schemaSpec)
	if err != nil {
		log.Fatal(err)
	}
	bobRel, err := relation.ReadCSV(strings.NewReader(marked["bob"].Data), schema)
	if err != nil {
		log.Fatal(err)
	}
	src := stats.NewSource("pirate")
	stolen, err := attacks.HorizontalSubset(bobRel, 0.7, src.Fork("subset"))
	if err != nil {
		log.Fatal(err)
	}
	stolen = attacks.Resort(stolen, src.Fork("shuffle"))
	var suspect strings.Builder
	if err := relation.WriteCSV(&suspect, stolen); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the pirated copy kept %d of %d tuples, re-shuffled\n\n", stolen.Len(), bobRel.Len())

	fmt.Println("=== 4. Audit the suspect against the WHOLE catalog, as a job ====")
	job, err := c.SubmitJob(ctx, api.JobRequest{
		Kind: api.JobKindVerifyBatch,
		VerifyBatch: &api.BatchVerifyRequest{
			Schema: schemaSpec, // empty Records: every stored certificate
			Data:   suspect.String(),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s submitted (%s); polling…\n", job.ID, job.State)
	final, err := c.WaitJob(ctx, job.ID, 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	if final.State != api.JobDone {
		log.Fatalf("job ended %s: %v", final.State, final.Error)
	}
	fmt.Printf("job done: %d certificates checked against one %d-tuple scan\n",
		len(final.VerifyBatch.Results), final.VerifyBatch.Tuples)
	idToOwner := map[string]string{}
	for owner, resp := range marked {
		idToOwner[resp.ID] = owner
	}
	for _, res := range final.VerifyBatch.Results {
		fmt.Printf("  %-6s match %5.1f%%  verdict: %s\n",
			idToOwner[res.ID], res.Match*100, res.Verdict)
	}
	fmt.Println()

	fmt.Println("=== 5. Cancelling a runaway audit mid-scan ======================")
	var big strings.Builder
	big.WriteString("Visit_Nbr,Item_Nbr\n")
	for i := 0; i < 1_500_000; i++ {
		fmt.Fprintf(&big, "%d,%d\n", i, i%500)
	}
	runaway, err := c.SubmitJob(ctx, api.JobRequest{
		Kind: api.JobKindVerifyBatch,
		VerifyBatch: &api.BatchVerifyRequest{
			Schema: schemaSpec, Data: big.String(), Workers: 1,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for {
		cur, err := c.Job(ctx, runaway.ID)
		if err != nil {
			log.Fatal(err)
		}
		if cur.State != api.JobQueued {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.CancelJob(ctx, runaway.ID); err != nil {
		log.Fatal(err)
	}
	cancelled, err := c.WaitJob(ctx, runaway.ID, 20*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s: state %s (error code %q) — scan workers exited via context\n",
		runaway.ID, cancelled.State, cancelled.Error.Code)
}
