// Constraints demonstrates the Section 4.1 quality-assessment machinery
// with the Section 6 constraint expression language: the data owner writes
// usability constraints the way they would a SQL WHERE clause, and the
// embedding engine evaluates them continuously, rolling back any step that
// would violate them (the paper's Figure 3 architecture).
//
//	go run ./examples/constraints
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/quality"
	"repro/internal/relation"
)

func main() {
	r, catalog, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 20000, CatalogSize: 500, ZipfS: 1.0, Seed: "constraints-example",
	})
	if err != nil {
		log.Fatal(err)
	}
	original := r.Clone()
	topSeller := datagen.ItemNbr(0) // the rank-0 product

	fmt.Println("the owner's usability constraints, in the expression language:")
	specs := map[string]string{
		"alteration-budget": "altered_fraction() <= 0.02",
		"histogram-shape":   "freq_drift('Item_Nbr') <= 0.03",
		"top-seller-floor":  fmt.Sprintf("freq('Item_Nbr', '%s') >= 0.14", topSeller),
	}
	var constraints []quality.Constraint
	for name, src := range specs {
		fmt.Printf("  %-18s %s\n", name+":", src)
		c, err := quality.ParseConstraint(name, src, r)
		if err != nil {
			log.Fatal(err)
		}
		constraints = append(constraints, c)
	}
	constraints = append(constraints, quality.ValueDomain("Item_Nbr", catalog))
	assessor := quality.NewAssessor(constraints...)

	opts := mark.Options{
		Attr:     "Item_Nbr",
		K1:       keyhash.NewKey("constraints-k1"),
		K2:       keyhash.NewKey("constraints-k2"),
		E:        40, // unconstrained this would alter ~2.5% — over budget
		Domain:   catalog,
		Assessor: assessor,
	}
	wm := ecc.MustParseBits("1011001110")
	st, err := mark.Embed(r, wm, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nembedding under constraints:\n")
	fmt.Printf("  fit tuples:        %d\n", st.Fit)
	fmt.Printf("  alterations:       %d (%.2f%% of data)\n", st.Altered, st.AlterationRate()*100)
	fmt.Printf("  vetoed by quality: %d (each rolled back on the spot)\n", st.SkippedQuality)

	hist, _ := relation.HistogramOf(r, "Item_Nbr")
	fmt.Printf("  top seller frequency after marking: %.3f (floor 0.14)\n", hist.Freq(topSeller))

	rep, err := mark.Detect(r, len(wm), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  detection despite the vetoes: %q (match %.0f%%)\n",
		rep.WM, rep.MatchFraction(wm)*100)

	// The rollback log can undo the entire watermarking pass.
	if err := assessor.UndoAll(r); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter UndoAll: relation identical to the original: %v\n", r.Equal(original))
}
