// Salesdata reproduces the paper's Section 5 scenario end to end: generate
// the Wal-Mart ItemScan stand-in, watermark Item_Nbr, run the full attack
// gauntlet (A1-A4, A6), and report detection quality after each attack.
//
//	go run ./examples/salesdata [-n 141000]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/attacks"
	"repro/internal/datagen"
	"repro/internal/ecc"
	"repro/internal/freq"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/relation"
	"repro/internal/stats"
)

func main() {
	n := flag.Int("n", 20000, "dataset size (paper: 141000)")
	flag.Parse()

	// The paper's test relation: Visit_Nbr INTEGER PRIMARY KEY,
	// Item_Nbr INTEGER — synthetic stand-in, see DESIGN.md.
	r, catalog, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: *n, CatalogSize: 1000, ZipfS: 1.0, Seed: "salesdata-example",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated ItemScan stand-in: %d tuples, %d-item catalog\n\n",
		r.Len(), catalog.Size())

	wm := ecc.MustParseBits("1011001110") // the paper's 10-bit mark size
	opts := mark.Options{
		Attr:   "Item_Nbr",
		K1:     keyhash.NewKey("walmart-owner-k1"),
		K2:     keyhash.NewKey("walmart-owner-k2"),
		E:      65, // the paper's Figure 4 headline setting
		Domain: catalog,
	}
	st, err := mark.Embed(r, wm, opts)
	if err != nil {
		log.Fatal(err)
	}
	bw := st.Bandwidth
	fmt.Printf("watermarked: %d fit tuples, %d altered (%.2f%% of data), bandwidth %d\n\n",
		st.Fit, st.Altered, st.AlterationRate()*100, bw)

	// Keep the registered frequency profile for A6 recovery.
	profile, err := freq.ProfileOf(r, "Item_Nbr")
	if err != nil {
		log.Fatal(err)
	}

	detect := func(name string, attacked *relation.Relation) {
		detOpts := opts
		detOpts.BandwidthOverride = bw
		rep, err := mark.Detect(attacked, len(wm), detOpts)
		if err != nil {
			fmt.Printf("%-28s detection error: %v\n", name, err)
			return
		}
		fmt.Printf("%-28s match %5.1f%%  (fit %5d, filled %4d/%d, margin %.2f)\n",
			name, rep.MatchFraction(wm)*100, rep.Fit, rep.PositionsFilled,
			rep.Bandwidth, rep.MeanMargin)
	}

	src := stats.NewSource("salesdata-attacks")
	detect("no attack:", r)

	for _, loss := range []float64{0.2, 0.5, 0.8} {
		a, err := attacks.HorizontalSubset(r, 1-loss, src.Fork(fmt.Sprintf("a1-%.0f", loss*100)))
		if err != nil {
			log.Fatal(err)
		}
		detect(fmt.Sprintf("A1 %.0f%% data loss:", loss*100), a)
	}

	a2, err := attacks.SubsetAddition(r, 0.5, src.Fork("a2"))
	if err != nil {
		log.Fatal(err)
	}
	detect("A2 +50% forged tuples:", a2)

	for _, frac := range []float64{0.2, 0.5} {
		a, err := attacks.SubsetAlteration(r, "Item_Nbr", frac, catalog, src.Fork(fmt.Sprintf("a3-%.0f", frac*100)))
		if err != nil {
			log.Fatal(err)
		}
		detect(fmt.Sprintf("A3 %.0f%% random rewrites:", frac*100), a)
	}

	detect("A4 shuffled:", attacks.Resort(r, src.Fork("a4")))

	// A6: bijective remapping, then frequency-profile recovery (§4.5).
	remapped, _, err := attacks.BijectiveRemap(r, "Item_Nbr", src.Fork("a6"))
	if err != nil {
		log.Fatal(err)
	}
	detect("A6 remapped (no recovery):", remapped)
	inverse, err := freq.RecoverMapping(remapped, "Item_Nbr", profile)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := freq.ApplyMapping(remapped, "Item_Nbr", inverse); err != nil {
		log.Fatal(err)
	}
	detect("A6 remapped + recovery:", remapped)

	fmt.Println("\nthe paper's headline: up to 80% data loss costs only ~25% of the mark.")
}
